(* Opacity-oracle and streaming-checker battery.

   Three layers of teeth:

   - Mutation tests: re-open the stale-read window the post-grant
     doom check closes (the [unsafe_skip_doom_check] hook) and require
     the opacity oracle to reject the run with a minimal two-read
     witness while the serializability oracle — which only judges
     committed transactions — stays green. A hand-built history pins
     the same property without the simulator in the loop.

   - Differential tests: the streaming checker's verdict must be
     structurally identical to the batch oracle's over the same event
     stream — QCheck-driven across workload shapes x seeds x fault
     plans, plus the mutated (opacity-violating) run.

   - Bounded memory: the streaming checker's reachable size after a
     run 10x longer must be flat — it retains the concurrency window,
     never the run. *)

open Tm2c_core
open Tm2c_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(total = 8) ?(service = 4) ?(seed = 42) () =
  {
    Runtime.platform = Tm2c_noc.Platform.scc;
    total_cores = total;
    service_cores = service;
    deployment = Runtime.Dedicated;
    policy = Cm.Fair_cm;
    wmode = Tx.Lazy;
    batching = true;
    max_skew_ns = 3_000.0;
    seed;
    mem_words = 1 lsl 18;
  }

(* ------------------------------------------------------------------ *)
(* Mutation: the stale-read window.                                    *)
(* ------------------------------------------------------------------ *)

(* The victim (app core 5) reads A, dawdles, reads B. The winner (app
   core 1) writes both words in the gap; FairCM sides with it (equal
   effective time, lower core id), so the victim is doomed mid-flight.
   With the doom check skipped the victim's second read is still
   granted and observes the new B against the old A — a prefix no
   memory snapshot explains. The attempt aborts at its commit CAS
   either way, so the committed history stays serializable: only the
   opacity oracle can see the bug. *)
let run_stale_window ~skip =
  let t = Runtime.create (cfg ()) in
  Runtime.set_skip_doom_check t skip;
  let col = Collector.create () in
  Collector.attach col (Runtime.trace t);
  let a = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  let b = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  Runtime.host_write t a 10;
  Runtime.host_write t b 20;
  Runtime.start_services t;
  let vctx = Runtime.app_ctx t 5 in
  Runtime.spawn_app t 5 (fun () ->
      Tx.atomic vctx (fun () ->
          ignore (Tx.read vctx a);
          Tm2c_engine.Sim.delay 200_000.0;
          ignore (Tx.read vctx b)));
  let wctx = Runtime.app_ctx t 1 in
  Runtime.spawn_app t 1 (fun () ->
      Tm2c_engine.Sim.delay 20_000.0;
      Tx.atomic wctx (fun () ->
          Tx.write wctx a 11;
          Tx.write wctx b 21));
  let _ = Runtime.run t ~until:1e12 () in
  Collector.detach (Runtime.trace t);
  (a, b, Collector.to_list col)

let test_mutation_stale_read_caught () =
  let a, b, events = run_stale_window ~skip:true in
  let r = Check.run_list events in
  check "history is well-formed" true (r.Check.history.History.anomalies = []);
  check "lock discipline is clean" true (Lockset.ok r.Check.lockset);
  check "committed history stays serializable" true
    (r.Check.serial.Serial.cycle = None);
  check "no corruption" true (r.Check.serial.Serial.corruption = []);
  check "opacity oracle rejects the run" false (Check.passed r);
  match r.Check.serial.Serial.opacity with
  | [] -> Alcotest.fail "expected an inconsistent-read witness"
  | w :: _ ->
      check_int "witness: victim core" 5 w.Serial.ir_core;
      check_int "witness read 1 is the stale A" a w.Serial.ir_addr1;
      check_int "witness value 1 predates the winner" 10 w.Serial.ir_value1;
      check_int "witness read 2 is the fresh B" b w.Serial.ir_addr2;
      check_int "witness value 2 is the winner's" 21 w.Serial.ir_value2;
      check "witness reads are ordered" true (w.Serial.ir_seq1 < w.Serial.ir_seq2)

let test_mutation_stale_read_fixed_protocol_clean () =
  let _, _, events = run_stale_window ~skip:false in
  let r = Check.run_list events in
  check "post-grant doom check closes the window" true (Check.passed r);
  check "opacity attempts were still checked" true
    (r.Check.serial.Serial.n_opacity_checked > 0)

(* The streaming checker must reach the same verdict on the mutated
   run, and its opacity witness must name the same address pair. *)
let test_mutation_streaming_agrees () =
  let a, b, events = run_stale_window ~skip:true in
  let s = Stream.create () in
  List.iter (fun (now, ev) -> Stream.feed s now ev) events;
  let online = Stream.finish s in
  let batch = Check.run_list events in
  check "streaming verdict = batch verdict" true
    (Stream.equal online (Stream.verdict_of_result batch));
  check "streaming flags the opacity violation" false (Stream.passed online);
  check "streaming witness names the (A, B) pair" true
    (List.mem (min a b, max a b) online.Stream.d_opacity
    || List.mem (a, b) online.Stream.d_opacity)

(* ------------------------------------------------------------------ *)
(* Hand-built history: the oracle without the simulator in the loop.   *)
(* ------------------------------------------------------------------ *)

(* Writer atomically installs A:=1, B:=1; the reader sees the old A
   and the new B, then aborts. Not serializable-relevant (the reader
   never commits) — opacity only. The host writes pin both initial
   versions, so the fresh B cannot be explained away as unbound
   initial state. *)
let fractured_abort_events =
  let a = 100 and b = 101 in
  [
    (0.5, Event.Host_write { addr = a; value = 0 });
    (0.6, Event.Host_write { addr = b; value = 0 });
    (1.0, Event.Tx_start { core = 0; attempt = 1; elastic = false });
    (2.0, Event.Tx_start { core = 1; attempt = 1; elastic = false });
    (3.0, Event.Tx_read { core = 1; addr = a; granted = true; value = 0 });
    (4.0, Event.Tx_write { core = 0; addr = a; value = 1 });
    (5.0, Event.Tx_write { core = 0; addr = b; value = 1 });
    (6.0, Event.Tx_commit_begin { core = 0; attempt = 1; n_writes = 2 });
    (* the CM sides with the writer: the reader's A lock is revoked
       (it is now doomed), then the writer's grant lands *)
    ( 6.5,
      Event.Enemy_aborted
        { server = 2; winner = 0; victim = 1; addr = a; conflict = Types.War } );
    (7.0, Event.Wlock_granted { core = 0; addrs = [ a; b ] });
    (8.0, Event.Tx_publish { core = 0; attempt = 1; n_writes = 2 });
    (9.0, Event.Tx_committed { core = 0; attempt = 1; duration_ns = 8.0 });
    (10.0, Event.Tx_read { core = 1; addr = b; granted = true; value = 1 });
    (11.0, Event.Tx_aborted { core = 1; attempt = 1; conflict = None });
  ]

let test_synthetic_inconsistent_prefix_caught () =
  let r = Check.run_list fractured_abort_events in
  check "serializable (the reader never committed)" true
    (r.Check.serial.Serial.cycle = None);
  check "opacity rejects" false (Check.passed r);
  (match r.Check.serial.Serial.opacity with
  | [ w ] ->
      check_int "read 1: the stale A" 100 w.Serial.ir_addr1;
      check_int "read 2: the fresh B" 101 w.Serial.ir_addr2;
      check_int "version pinning read 2 is the writer's publish" w.Serial.ir_pub2
        w.Serial.ir_pub2
  | ws -> Alcotest.failf "expected exactly one witness, got %d" (List.length ws));
  (* The same history under opacity:false is clean: the check is the
     only oracle with jurisdiction over aborted reads. *)
  check "opacity:false accepts" true
    (Check.passed (Check.run_list ~opacity:false fractured_abort_events))

let test_synthetic_streaming_agrees () =
  let s = Stream.create () in
  List.iter (fun (now, ev) -> Stream.feed s now ev) fractured_abort_events;
  let online = Stream.finish s in
  check "streaming verdict = batch verdict" true
    (Stream.equal online
       (Stream.verdict_of_result (Check.run_list fractured_abort_events)));
  check_int "one opacity witness" 1 (List.length online.Stream.d_opacity);
  let s' = Stream.create ~opacity:false () in
  List.iter (fun (now, ev) -> Stream.feed s' now ev) fractured_abort_events;
  check "streaming opacity:false accepts" true (Stream.passed (Stream.finish s'))

(* ------------------------------------------------------------------ *)
(* Differential: streaming verdict == batch verdict.                   *)
(* ------------------------------------------------------------------ *)

let counter_body t ~duration_ns =
  let c = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  Tm2c_apps.Workload.drive t ~duration_ns (fun _core ctx _prng () ->
      Tx.atomic ctx (fun () -> Tx.write ctx c (Tx.read ctx c + 1)))

let bank_body t ~duration_ns =
  let accounts = 256 in
  let b = Tm2c_apps.Bank.create t ~accounts ~initial:100 in
  Tm2c_apps.Workload.drive t ~duration_ns (fun _core ctx prng () ->
      if Tm2c_engine.Prng.int prng 100 < 20 then
        ignore (Tm2c_apps.Bank.tx_balance ctx b)
      else
        let src = Tm2c_engine.Prng.int prng accounts
        and dst = Tm2c_engine.Prng.int prng accounts in
        Tm2c_apps.Bank.tx_transfer ctx b ~src ~dst ~amount:1)

(* Elastic early-release list: exercises the oracle paths that exempt
   elastic read prefixes from both read checks. *)
let list_body t ~duration_ns =
  let size = 32 in
  let l = Tm2c_apps.Linkedlist.create t in
  Tm2c_apps.Linkedlist.populate l (Runtime.fork_prng t) ~n:size
    ~key_range:(2 * size);
  Tm2c_apps.Workload.drive t ~duration_ns (fun _core ctx prng () ->
      let k = Tm2c_engine.Prng.int prng (2 * size) in
      let p = Tm2c_engine.Prng.int prng 100 in
      if p < 20 then
        if p land 1 = 0 then
          ignore (Tm2c_apps.Linkedlist.tx_add ~mode:`Elastic_early ctx l k)
        else ignore (Tm2c_apps.Linkedlist.tx_remove ~mode:`Elastic_early ctx l k)
      else ignore (Tm2c_apps.Linkedlist.tx_contains ~mode:`Elastic_early ctx l k))

let shapes =
  [|
    ("counter", 0.5, counter_body);
    ("bank", 0.5, bank_body);
    ("list-elastic", 2.0, list_body);
  |]

let collect_shape ~shape ~seed ~faults =
  let _, duration_ms, body = shapes.(shape) in
  let t = Runtime.create (cfg ~seed ()) in
  if faults then begin
    (match
       Tm2c_noc.Fault.of_spec "drop=0.01,dup=0.02,delay=0.05@2000,crash=3@2e5"
     with
    | Ok p -> Runtime.set_fault_plan t p
    | Error m -> Alcotest.failf "bad fault spec: %s" m);
    Runtime.set_hardening t ~timeout_ns:60_000.0 ~lease_ns:250_000.0 ()
  end;
  let col = Collector.create () in
  Collector.attach col (Runtime.trace t);
  let _ = body t ~duration_ns:(duration_ms *. 1e6) in
  Collector.detach (Runtime.trace t);
  Collector.to_list col

let differential_prop =
  QCheck.Test.make ~name:"streaming verdict = batch verdict on random runs"
    ~count:10
    QCheck.(triple (int_bound (Array.length shapes - 1)) (int_bound 999) bool)
    (fun (shape, seed, faults) ->
      let events = collect_shape ~shape ~seed ~faults in
      let s = Stream.create () in
      List.iter (fun (now, ev) -> Stream.feed s now ev) events;
      let online = Stream.finish s in
      let batch = Check.run_list events in
      if Stream.equal online (Stream.verdict_of_result batch) then true
      else
        QCheck.Test.fail_reportf
          "verdicts diverge on %s seed=%d faults=%b:@\n-- online --@\n%s@\n-- \
           batch --@\n%s"
          (let name, _, _ = shapes.(shape) in
           name)
          seed faults (Stream.report_string s) (Check.report_string batch))

(* ------------------------------------------------------------------ *)
(* Bounded memory: window-sized, not run-sized.                        *)
(* ------------------------------------------------------------------ *)

(* Same workload, 10x the attempts: the streaming checker's reachable
   size right after the last event (GC'd window, chains, address
   residues — everything it would carry into a longer run) must stay
   flat. The batch oracle's history grows linearly by construction;
   this is the claim that separates the two. *)
let test_bounded_memory () =
  let run duration_ms =
    let t = Runtime.create (cfg ~seed:7 ()) in
    let s = Stream.create () in
    Stream.attach s (Runtime.trace t);
    let _ = counter_body t ~duration_ns:(duration_ms *. 1e6) in
    let words = Obj.reachable_words (Obj.repr s) in
    let v = Stream.finish s in
    check "run passes all checkers" true (Stream.passed v);
    (v.Stream.d_attempts, words)
  in
  let n_few, words_few = run 50.0 in
  let n_many, words_many = run 500.0 in
  check "attempt counts differ by an order of magnitude" true
    (n_many >= 8 * n_few);
  check "enough attempts to mean anything" true (n_few >= 1_000);
  (* Allow jitter in the retained window but nothing resembling
     linear-in-run-length growth. *)
  if words_many > words_few + (words_few / 10) + 4096 then
    Alcotest.failf
      "streaming checker grew with run length: %d words over %d attempts vs \
       %d words over %d attempts"
      words_many n_many words_few n_few

let suite =
  [
    Alcotest.test_case "mutation: stale-read window caught by opacity" `Quick
      test_mutation_stale_read_caught;
    Alcotest.test_case "mutation: fixed protocol replays clean" `Quick
      test_mutation_stale_read_fixed_protocol_clean;
    Alcotest.test_case "mutation: streaming checker agrees" `Quick
      test_mutation_streaming_agrees;
    Alcotest.test_case "synthetic inconsistent prefix caught" `Quick
      test_synthetic_inconsistent_prefix_caught;
    Alcotest.test_case "synthetic history: streaming agrees" `Quick
      test_synthetic_streaming_agrees;
    QCheck_alcotest.to_alcotest ~long:true differential_prop;
    Alcotest.test_case "streaming memory flat in run length" `Slow
      test_bounded_memory;
  ]
