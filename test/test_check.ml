(* Checker-stack tests: a clean workload must replay clean through
   all three checkers, the history log must round-trip exactly, the
   contention-manager decision events must agree with the observed
   outcomes, and — the teeth — a seeded window-edge serializability
   bug (non-atomic write-back, the class fixed in PR 1) must be
   caught by the oracle with a cycle witness. *)

open Tm2c_core
open Tm2c_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(total = 8) ?(service = 4) ?(seed = 42) () =
  {
    Runtime.platform = Tm2c_noc.Platform.scc;
    total_cores = total;
    service_cores = service;
    deployment = Runtime.Dedicated;
    policy = Cm.Fair_cm;
    wmode = Tx.Lazy;
    batching = true;
    max_skew_ns = 3_000.0;
    seed;
    mem_words = 1 lsl 18;
  }

(* A contended counter run with the collector tapped in: every core
   increments one shared word, so the trace carries plenty of
   arbitrations, enemy aborts, and status-CAS aborts. *)
let collect_counter ?(per_core = 50) () =
  let c = cfg () in
  let t = Runtime.create c in
  let col = Collector.create () in
  Collector.attach col (Runtime.trace t);
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  Runtime.start_services t;
  Array.iter
    (fun core ->
      let ctx = Runtime.app_ctx t core in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to per_core do
            Tx.atomic ctx (fun () ->
                Tx.write ctx counter (Tx.read ctx counter + 1));
            Runtime.poll_service t ~core
          done))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  Collector.detach (Runtime.trace t);
  Collector.to_list col

let test_clean_run_passes () =
  let events = collect_counter () in
  let r = Check.run_list events in
  check "clean counter run passes all checkers" true (Check.passed r);
  check_int "no failures" 0 (Check.n_failures r);
  check "some transactions checked" true
    (Array.length r.Check.serial.Serial.txns > 0);
  check "some grants replayed" true (r.Check.lockset.Lockset.n_grants > 0)

let test_histlog_roundtrip () =
  let events = collect_counter ~per_core:10 () in
  check "trace nonempty" true (events <> []);
  let path = Filename.temp_file "tm2c_hist" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Histlog.save path (Check.iter_of_list events);
      let loaded = Histlog.load path in
      check_int "same event count" (List.length events) (List.length loaded);
      (* Hex-float timestamps make the round-trip exact, so plain
         structural equality must hold. *)
      check "events round-trip exactly" true (events = loaded))

let test_histlog_rejects_garbage () =
  let path = Filename.temp_file "tm2c_hist" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# not a history log\n";
      close_out oc;
      check "unknown header rejected" true
        (match Histlog.load path with
        | _ -> false
        | exception Failure _ -> true))

(* One decision event per CM arbitration: a server resolves at most
   one request per virtual instant, so two identical [Lock_conflict]
   payloads at the same timestamp would mean a double emission. *)
let test_one_decision_per_arbitration () =
  let events = collect_counter () in
  let seen = Hashtbl.create 256 in
  let n = ref 0 in
  List.iter
    (fun (time, ev) ->
      match ev with
      | Event.Lock_conflict _ ->
          incr n;
          check "no duplicate decision event" false (Hashtbl.mem seen (time, ev));
          Hashtbl.add seen (time, ev) ()
      | _ -> ())
    events;
  check "arbitrations observed" true (!n > 0)

(* [requester_wins] agreement, winning direction: every enemy-abort
   CAS is preceded by a decision at the same server/requester/address
   that went the winner's way. *)
let test_enemy_abort_follows_winning_decision () =
  let events = Array.of_list (collect_counter ()) in
  let n_ena = ref 0 in
  Array.iteri
    (fun i (_, ev) ->
      match ev with
      | Event.Enemy_aborted { server; winner; addr; _ } ->
          incr n_ena;
          let rec back j =
            if j < 0 then
              Alcotest.failf
                "no Lock_conflict precedes the Enemy_aborted at seq %d" i
            else
              match snd events.(j) with
              | Event.Lock_conflict
                  { server = s; requester; addr = a; requester_wins; _ }
                when s = server && requester = winner && a = addr ->
                  check "decision preceding the CAS was a win" true
                    requester_wins
              | _ -> back (j - 1)
          in
          back (i - 1)
      | _ -> ())
    events;
  check "enemy aborts observed" true (!n_ena > 0)

(* [requester_wins] agreement, losing direction: a requester that
   loses an arbitration receives a Conflicted reply, so the attempt
   it was running must end in [Tx_aborted] — never [Tx_committed]. *)
let test_losing_requester_aborts () =
  let events = Array.of_list (collect_counter ()) in
  let n_losses = ref 0 in
  Array.iteri
    (fun i (_, ev) ->
      match ev with
      | Event.Lock_conflict { requester; requester_wins = false; _ } ->
          incr n_losses;
          let rec next j =
            if j >= Array.length events then () (* horizon: unfinished *)
            else
              match snd events.(j) with
              | Event.Tx_committed { core; _ } when core = requester ->
                  Alcotest.failf
                    "core %d committed the attempt in which it lost the \
                     arbitration at seq %d"
                    requester i
              | Event.Tx_aborted { core; _ } when core = requester -> ()
              | _ -> next (j + 1)
          in
          next (i + 1)
      | _ -> ())
    events;
  check "lost arbitrations observed" true (!n_losses > 0)

(* The mutation test: replay the trace a *non-atomic* write-back
   would leave behind — the bug class PR 1 fixed, where a run horizon
   (or an interleaved reader) could observe the write set half
   applied. T0 buffers A:=1, B:=1 and publishes; T1 reads the new A
   but the old B from inside the write-back window. No lock rule is
   broken (T0's releases go out at its publish point), yet the
   history is not serializable: T0 -> T1 on A (WR) and T1 -> T0 on B
   (RW) close a cycle the oracle must report. *)
let test_mutation_nonatomic_writeback_caught () =
  let a = 100 and b = 101 in
  let e k = k in
  let events =
    [
      (1.0, Event.Tx_start { core = 0; attempt = 1; elastic = false });
      (2.0, Event.Tx_start { core = 1; attempt = 1; elastic = false });
      (3.0, Event.Tx_read { core = 0; addr = a; granted = true; value = 0 });
      (4.0, Event.Tx_read { core = 0; addr = b; granted = true; value = 0 });
      (5.0, Event.Tx_write { core = 0; addr = a; value = 1 });
      (6.0, Event.Tx_write { core = 0; addr = b; value = 1 });
      (7.0, Event.Tx_commit_begin { core = 0; attempt = 1; n_writes = 2 });
      (8.0, Event.Wlock_granted { core = 0; addrs = [ a; b ] });
      (9.0, Event.Tx_publish { core = 0; attempt = 1; n_writes = 2 });
      (* the fractured window: A already visible, B not yet *)
      (10.0, Event.Tx_read { core = 1; addr = a; granted = true; value = 1 });
      (11.0, Event.Tx_read { core = 1; addr = b; granted = true; value = 0 });
      (12.0, Event.Tx_committed { core = 0; attempt = 1; duration_ns = 11.0 });
      (13.0, Event.Tx_commit_begin { core = 1; attempt = 1; n_writes = 0 });
      (14.0, Event.Tx_publish { core = 1; attempt = 1; n_writes = 0 });
      (15.0, Event.Tx_committed { core = 1; attempt = 1; duration_ns = 13.0 });
    ]
    |> List.map e
  in
  let r = Check.run_list events in
  check "history itself is well-formed" true
    (r.Check.history.History.anomalies = []);
  check "lock discipline is clean (the bug is not a lock bug)" true
    (Lockset.ok r.Check.lockset);
  check "oracle rejects the history" false (Serial.ok r.Check.serial);
  check "overall verdict fails" false (Check.passed r);
  (match r.Check.serial.Serial.cycle with
  | None -> Alcotest.fail "expected a conflict-graph cycle"
  | Some c ->
      check_int "minimal witness: both transactions on the cycle" 2
        (List.length c.Serial.c_txns);
      let kinds =
        List.map (fun ed -> ed.Serial.e_kind) c.Serial.c_edges
        |> List.sort_uniq compare
      in
      check "cycle mixes WR and RW dependencies" true
        (kinds = [ Serial.Wr; Serial.Rw ] || kinds = [ Serial.Rw; Serial.Wr ]));
  let report = Check.report_string r in
  check "witness names the cycle" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i =
         i + m <= n && (String.sub s i m = sub || go (i + 1))
       in
       go 0
     in
     contains report "cycle")

(* The same two transactions with an atomic write-back (T1 reads both
   words after the burst) must sail through: the oracle's rejection
   above is specific to the fractured window, not to the shape. *)
let test_atomic_writeback_passes () =
  let a = 100 and b = 101 in
  let events =
    [
      (1.0, Event.Tx_start { core = 0; attempt = 1; elastic = false });
      (2.0, Event.Tx_start { core = 1; attempt = 1; elastic = false });
      (3.0, Event.Tx_read { core = 0; addr = a; granted = true; value = 0 });
      (4.0, Event.Tx_read { core = 0; addr = b; granted = true; value = 0 });
      (5.0, Event.Tx_write { core = 0; addr = a; value = 1 });
      (6.0, Event.Tx_write { core = 0; addr = b; value = 1 });
      (7.0, Event.Tx_commit_begin { core = 0; attempt = 1; n_writes = 2 });
      (8.0, Event.Wlock_granted { core = 0; addrs = [ a; b ] });
      (9.0, Event.Tx_publish { core = 0; attempt = 1; n_writes = 2 });
      (10.0, Event.Tx_read { core = 1; addr = a; granted = true; value = 1 });
      (11.0, Event.Tx_read { core = 1; addr = b; granted = true; value = 1 });
      (12.0, Event.Tx_committed { core = 0; attempt = 1; duration_ns = 11.0 });
      (13.0, Event.Tx_commit_begin { core = 1; attempt = 1; n_writes = 0 });
      (14.0, Event.Tx_publish { core = 1; attempt = 1; n_writes = 0 });
      (15.0, Event.Tx_committed { core = 1; attempt = 1; duration_ns = 13.0 });
    ]
  in
  let r = Check.run_list events in
  check "atomic write-back passes" true (Check.passed r)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Lockset mutation: a DS server that double-releases a write lock
   would be able to grant it to a second writer while the first still
   holds it. Simulate the aftermath by injecting a conflicting
   [Wlock_granted] right after a real one in an otherwise clean
   stream; the protocol checker must reject with a witness naming the
   exclusivity breach. *)
let test_mutation_double_wlock_grant_caught () =
  let events = collect_counter ~per_core:10 () in
  check "unmutated stream is clean" true
    (Lockset.ok (Lockset.analyze (Check.iter_of_list events)));
  let mutated =
    List.concat_map
      (fun (time, ev) ->
        match ev with
        | Event.Wlock_granted { core; addrs } when addrs <> [] ->
            let enemy = if core = 1 then 3 else 1 in
            [ (time, ev); (time, Event.Wlock_granted { core = enemy; addrs }) ]
        | _ -> [ (time, ev) ])
      events
  in
  let r = Lockset.analyze (Check.iter_of_list mutated) in
  check "double grant rejected" false (Lockset.ok r);
  check "witness names the exclusivity breach" true
    (List.exists
       (fun v -> contains v.Lockset.v_message "write-lock grant")
       r.Lockset.violations)

(* Lockset mutation: releasing a read lock before the attempt's end in
   a *non-elastic* transaction breaks two-phase locking. Inject an
   [Rlock_released] right after the first granted read; the checker
   must reject with a two-phase witness. *)
let test_mutation_early_read_release_caught () =
  let events = collect_counter ~per_core:10 () in
  let injected = ref false in
  let mutated =
    List.concat_map
      (fun (time, ev) ->
        match ev with
        | Event.Tx_read { core; addr; granted = true; _ } when not !injected ->
            injected := true;
            [ (time, ev); (time, Event.Rlock_released { core; addr }) ]
        | _ -> [ (time, ev) ])
      events
  in
  check "mutation applied" true !injected;
  let r = Lockset.analyze (Check.iter_of_list mutated) in
  check "early release rejected" false (Lockset.ok r);
  check "witness names the two-phase violation" true
    (List.exists
       (fun v -> contains v.Lockset.v_message "two-phase violation")
       r.Lockset.violations)

(* The five fault/hardening event kinds added in the v2 log format
   must survive a save/load round trip exactly. *)
let test_histlog_fault_events_roundtrip () =
  let events =
    [
      (1.0, Event.Msg_dropped { src = 1; dst = 2 });
      (2.0, Event.Msg_duplicated { src = 3; dst = 0 });
      (3.0, Event.Req_resent { core = 1; server = 2; req_id = 7; nth = 1 });
      (4.0, Event.Core_crashed { core = 3; attempt = 5 });
      ( 5.0,
        Event.Lease_reclaimed { server = 2; victim = 3; addr = 9; aborted = true }
      );
      ( 6.0,
        Event.Lease_reclaimed
          { server = 0; victim = 1; addr = 11; aborted = false } );
    ]
  in
  let path = Filename.temp_file "tm2c_hist" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Histlog.save path (Check.iter_of_list events);
      check "fault events round-trip exactly" true (Histlog.load path = events))

(* Pre-fault-layer v1 logs stay loadable: only the header differs when
   no fault records are present. *)
let test_histlog_v1_header_accepted () =
  let events = collect_counter ~per_core:5 () in
  let path = Filename.temp_file "tm2c_hist" ".log" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Histlog.save path (Check.iter_of_list events);
      let contents = In_channel.with_open_text path In_channel.input_all in
      let body =
        match String.index_opt contents '\n' with
        | Some i -> String.sub contents i (String.length contents - i)
        | None -> Alcotest.fail "history log has no header line"
      in
      let oc = open_out path in
      output_string oc ("# tm2c-history v1" ^ body);
      close_out oc;
      check "v1 header accepted" true (Histlog.load path = events))

let test_liveness_budget () =
  (* Synthetic starving core: [budget] consecutive aborts trip the
     monitor; one fewer stays clean. *)
  let mk n =
    List.concat
      (List.init n (fun i ->
           let t = float_of_int (i * 2) in
           [
             (t, Event.Tx_start { core = 0; attempt = i + 1; elastic = false });
             ( t +. 1.0,
               Event.Tx_aborted { core = 0; attempt = i + 1; conflict = None }
             );
           ]))
  in
  let r = Check.run_list ~liveness_budget:5 (mk 5) in
  check "budget-length chain trips the monitor" false
    (Liveness.ok r.Check.liveness);
  let r = Check.run_list ~liveness_budget:5 (mk 4) in
  check "shorter chain is clean" true (Liveness.ok r.Check.liveness)

let test_status_label () =
  Alcotest.(check string)
    "status-CAS abort label" "STATUS"
    (Event.conflict_opt_to_string None)

let suite =
  [
    Alcotest.test_case "clean counter run passes" `Slow test_clean_run_passes;
    Alcotest.test_case "histlog round-trips exactly" `Quick
      test_histlog_roundtrip;
    Alcotest.test_case "histlog rejects unknown header" `Quick
      test_histlog_rejects_garbage;
    Alcotest.test_case "one decision event per arbitration" `Slow
      test_one_decision_per_arbitration;
    Alcotest.test_case "enemy abort follows a winning decision" `Slow
      test_enemy_abort_follows_winning_decision;
    Alcotest.test_case "losing requester aborts" `Slow
      test_losing_requester_aborts;
    Alcotest.test_case "mutation: non-atomic write-back caught" `Quick
      test_mutation_nonatomic_writeback_caught;
    Alcotest.test_case "atomic write-back passes" `Quick
      test_atomic_writeback_passes;
    Alcotest.test_case "mutation: double write-lock grant caught" `Quick
      test_mutation_double_wlock_grant_caught;
    Alcotest.test_case "mutation: early read-lock release caught" `Quick
      test_mutation_early_read_release_caught;
    Alcotest.test_case "histlog round-trips fault events" `Quick
      test_histlog_fault_events_roundtrip;
    Alcotest.test_case "histlog accepts v1 header" `Quick
      test_histlog_v1_header_accepted;
    Alcotest.test_case "liveness budget" `Quick test_liveness_budget;
    Alcotest.test_case "STATUS abort label" `Quick test_status_label;
  ]
