(* The log-linear quantile sketch: estimates against an exact
   sorted-sample oracle (the documented error bound, property-based),
   merge associativity, and the window (baseline/delta) API the flight
   recorder builds on. *)

open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0))

(* Histogram's rank rule, which Sketch documents and implements: the
   p-th percentile of n samples is the rank-th smallest with
   rank = clamp(round(n * p / 100), 1, n). *)
let exact_percentile sorted p =
  let n = Array.length sorted in
  let r = int_of_float (Float.round (float_of_int n *. p /. 100.0)) in
  let r = if r < 1 then 1 else if r > n then n else r in
  sorted.(r - 1)

(* The documented guarantee: midpoint of the bucket holding the
   rank-th sample, so within half a bucket width of the true sample —
   [rel_error] *relative* at or above 1.0 (octave buckets), [rel_error]
   *absolute* below 1.0 (linear buckets). A whisker of slack covers
   the midpoint's own last-bit rounding. *)
let within_bound ~rel_error ~exact est =
  let bound =
    if exact >= 1.0 then rel_error *. exact else rel_error
  in
  Float.abs (est -. exact) <= bound +. 1e-9 *. Float.max exact 1.0

let quantile_ladder = [ 50.0; 90.0; 99.0; 99.9 ]

(* Samples spanning the linear region, several octaves, and ns-scale
   magnitudes — the ranges the latency sketches actually see. *)
let sample_gen =
  QCheck.Gen.(
    map2
      (fun scale u -> u *. scale)
      (oneofl [ 0.5; 1.0; 100.0; 1e4; 1e6; 1e9 ])
      (float_bound_inclusive 1.0))

let samples_gen = QCheck.Gen.(list_size (int_range 1 400) sample_gen)

let samples_arb =
  QCheck.make ~print:QCheck.Print.(list float) samples_gen

let sketch_vs_oracle =
  QCheck.Test.make ~name:"sketch quantiles within the documented bound"
    ~count:200 samples_arb (fun samples ->
      let t = Sketch.create () in
      List.iter (Sketch.add t) samples;
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      check_int "count" (List.length samples) (Sketch.count t);
      List.for_all
        (fun p ->
          within_bound ~rel_error:(Sketch.rel_error t)
            ~exact:(exact_percentile sorted p) (Sketch.percentile t p))
        quantile_ladder)

(* Order independence and merge agreement: any split of the stream,
   each half sketched independently, merged — identical counts, so
   identical quantiles, to sketching the whole stream one by one. *)
let merge_agrees =
  QCheck.Test.make ~name:"merge of split streams = single-stream sketch"
    ~count:200
    QCheck.(pair samples_arb (int_bound 1000))
    (fun (samples, cut) ->
      let n = List.length samples in
      let cut = cut mod (n + 1) in
      let single = Sketch.create () in
      List.iter (Sketch.add single) samples;
      let a = Sketch.create () and b = Sketch.create () in
      List.iteri
        (fun i v -> Sketch.add (if i < cut then a else b) v)
        samples;
      let merged = Sketch.create () in
      Sketch.merge ~into:merged b;
      Sketch.merge ~into:merged a;
      Sketch.count merged = Sketch.count single
      (* Sums accumulate in different orders — equal up to float
         non-associativity; counts (hence quantiles) are exact. *)
      && Float.abs (Sketch.sum merged -. Sketch.sum single)
         <= 1e-9 *. Float.max (Sketch.sum single) 1.0
      && Sketch.min_value merged = Sketch.min_value single
      && Sketch.max_value merged = Sketch.max_value single
      && List.for_all
           (fun p -> Sketch.percentile merged p = Sketch.percentile single p)
           quantile_ladder)

let test_empty () =
  let t = Sketch.create () in
  check_int "count" 0 (Sketch.count t);
  checkf "sum" 0.0 (Sketch.sum t);
  checkf "mean" 0.0 (Sketch.mean t);
  checkf "min" 0.0 (Sketch.min_value t);
  checkf "max" 0.0 (Sketch.max_value t);
  checkf "p99" 0.0 (Sketch.percentile t 99.0);
  check "no buckets" true (Sketch.buckets t = [])

let test_rel_error () =
  (* The achieved bound is the largest power-of-two refinement at or
     under the request: 1/128 for the 1% default. *)
  check "default bound <= 1%" true (Sketch.rel_error (Sketch.create ()) <= 0.01);
  checkf "default achieves 1/128" (1.0 /. 128.0)
    (Sketch.rel_error (Sketch.create ()));
  checkf "coarse request" (1.0 /. 64.0)
    (Sketch.rel_error (Sketch.create ~rel_error:0.02 ()));
  check "invalid bound rejected" true
    (try
       ignore (Sketch.create ~rel_error:0.0 ());
       false
     with Invalid_argument _ -> true)

let test_negative_clamped () =
  let t = Sketch.create () in
  Sketch.add t (-5.0);
  check_int "counted" 1 (Sketch.count t);
  checkf "clamped to zero" 0.0 (Sketch.percentile t 50.0);
  checkf "min" 0.0 (Sketch.min_value t)

let test_exact_singleton () =
  (* One sample: every quantile is that sample, exactly (the midpoint
     clamps to the observed min = max). *)
  let t = Sketch.create () in
  Sketch.add t 1234.5;
  List.iter (fun p -> checkf "singleton" 1234.5 (Sketch.percentile t p))
    [ 0.0; 50.0; 99.9; 100.0 ]

let test_mismatched_merge_rejected () =
  let a = Sketch.create ~rel_error:0.01 ()
  and b = Sketch.create ~rel_error:0.1 () in
  Sketch.add a 1.0;
  Sketch.add b 1.0;
  check "merge rejects mismatched resolutions" true
    (try
       Sketch.merge ~into:a b;
       false
     with Invalid_argument _ -> true)

(* Windows: the delta between a sketch and its baseline is exactly
   the distribution of what was added since the roll. *)
let test_window_delta () =
  let t = Sketch.create () in
  List.iter (Sketch.add t) [ 10.0; 20.0; 30.0 ];
  let w = Sketch.window_of t in
  check_int "fresh window is empty" 0 (Sketch.window_count t w);
  checkf "fresh window sum" 0.0 (Sketch.window_sum t w);
  List.iter (Sketch.add t) [ 1000.0; 2000.0 ];
  check_int "delta count" 2 (Sketch.window_count t w);
  checkf "delta sum" 3000.0 (Sketch.window_sum t w);
  (* The window's median sits among the new samples, far from the
     cumulative median. *)
  let wp50 = Sketch.window_percentile t w 50.0 in
  check "window median reflects only the delta" true
    (within_bound ~rel_error:(Sketch.rel_error t) ~exact:1000.0 wp50);
  (* Rolling re-baselines: the window drains. *)
  Sketch.window_roll t w;
  check_int "rolled window is empty" 0 (Sketch.window_count t w);
  (* window_merge folds the delta into a scratch sketch. *)
  Sketch.add t 500.0;
  let scratch = Sketch.create () in
  Sketch.window_merge t w ~into:scratch;
  check_int "merged delta count" 1 (Sketch.count scratch);
  checkf "merged delta sum" 500.0 (Sketch.sum scratch)

(* A window taken before the lazy counts array exists must still
   observe everything added afterwards. *)
let test_window_before_first_add () =
  let t = Sketch.create () in
  let w = Sketch.window_of t in
  List.iter (Sketch.add t) [ 5.0; 7.0 ];
  check_int "delta sees first samples" 2 (Sketch.window_count t w);
  Sketch.window_roll t w;
  check_int "roll catches up" 0 (Sketch.window_count t w)

let test_reset () =
  let t = Sketch.create () in
  List.iter (Sketch.add t) [ 1.0; 2.0; 3.0 ];
  Sketch.reset t;
  check_int "count" 0 (Sketch.count t);
  checkf "p50" 0.0 (Sketch.percentile t 50.0);
  Sketch.add t 42.0;
  checkf "usable after reset" 42.0 (Sketch.percentile t 50.0)

let suite =
  [
    QCheck_alcotest.to_alcotest sketch_vs_oracle;
    QCheck_alcotest.to_alcotest merge_agrees;
    ("sketch: empty", `Quick, test_empty);
    ("sketch: rel_error selection", `Quick, test_rel_error);
    ("sketch: negatives clamp to zero", `Quick, test_negative_clamped);
    ("sketch: singleton is exact", `Quick, test_exact_singleton);
    ("sketch: merge rejects mismatched resolutions", `Quick,
     test_mismatched_merge_rejected);
    ("sketch: window delta", `Quick, test_window_delta);
    ("sketch: window before first add", `Quick, test_window_before_first_add);
    ("sketch: reset", `Quick, test_reset);
  ]
