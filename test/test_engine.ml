(* Unit and property tests for the discrete-event engine. *)

open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---- Heap ---- *)

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  check_int "length" 3 (Heap.length h);
  Alcotest.(check (option (pair (float 0.0) string))) "min" (Some (1.0, "a")) (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "next" (Some (2.0, "b")) (Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "last" (Some (3.0, "c")) (Heap.pop_min h);
  check "empty" true (Heap.pop_min h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h 5.0 i
  done;
  for i = 0 to 99 do
    match Heap.pop_min h with
    | Some (_, v) -> check_int "fifo order on equal priorities" i v
    | None -> Alcotest.fail "heap empty too early"
  done

let test_heap_peek () =
  let h = Heap.create () in
  check "peek empty" true (Heap.peek_min h = None);
  Heap.push h 7.5 ();
  check_float "peek" 7.5 (Option.get (Heap.peek_min h));
  check_int "peek does not remove" 1 (Heap.length h)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p p) priorities;
      let rec drain acc =
        match Heap.pop_min h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      let drained = drain [] in
      drained = List.sort compare priorities)

(* Model test: an op sequence against a stable-sorted association-list
   oracle. Small integer priorities make ties frequent, so the
   insertion-order (FIFO) tie-break is exercised, not just ordering. *)
let heap_model_prop =
  QCheck.Test.make ~name:"heap matches sorted-list oracle (incl. FIFO ties)"
    ~count:300
    QCheck.(list (option (int_bound 5)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      let pop_oracle () =
        match
          List.stable_sort (fun (p1, _) (p2, _) -> compare p1 p2) !model
        with
        | [] -> None
        | ((_, s) as hd) :: _ ->
            model := List.filter (fun (_, s') -> s' <> s) !model;
            Some hd
      in
      let step op =
        match op with
        | Some p ->
            let prio = float_of_int p in
            Heap.push h prio !seq;
            model := !model @ [ (prio, !seq) ];
            incr seq
        | None -> (
            match (Heap.pop_min h, pop_oracle ()) with
            | None, None -> ()
            | Some got, Some want -> if got <> want then ok := false
            | _ -> ok := false)
      in
      List.iter step ops;
      (* Drain both to catch divergence left in the remaining state. *)
      while Heap.length h > 0 || !model <> [] do
        step None
      done;
      !ok)

(* The pop_min space-leak fix: popped values must become collectable
   even while the heap still holds other entries (vacated slots alias a
   live entry instead of pinning the popped one). *)
let test_heap_no_retention () =
  let n = 32 in
  let h = Heap.create () in
  let weak = Weak.create n in
  for i = 0 to n - 1 do
    let v = ref i in
    Weak.set weak i (Some v);
    Heap.push h (float_of_int i) v
  done;
  let live lo hi =
    let k = ref 0 in
    for i = lo to hi do
      if Weak.check weak i then incr k
    done;
    !k
  in
  for _ = 1 to n / 2 do
    ignore (Heap.pop_min h)
  done;
  Gc.full_major ();
  check_int "popped half collectable" 0 (live 0 ((n / 2) - 1));
  check_int "queued half retained" (n / 2) (live (n / 2) (n - 1));
  for _ = 1 to n / 2 do
    ignore (Heap.pop_min h)
  done;
  Gc.full_major ();
  check_int "all collectable once drained" 0 (live 0 (n - 1))

(* The drain-shrink fix: a heap that grew for a burst must give the
   memory back once occupancy falls below a quarter of capacity, and
   shrinking must leave the structure intact for a later regrow. *)
let test_heap_shrink_regrow () =
  let h = Heap.create () in
  let n = 4096 in
  for i = 0 to n - 1 do
    Heap.push h (float_of_int i) i
  done;
  let grown = Heap.capacity h in
  check "grew to hold the burst" true (grown >= n);
  for _ = 1 to n - 64 do
    ignore (Heap.pop_min h)
  done;
  check "capacity released on drain" true (Heap.capacity h < grown / 2);
  check_int "entries intact" 64 (Heap.length h);
  for i = 0 to n - 1 do
    Heap.push h (float_of_int (n + i)) i
  done;
  let prev = ref neg_infinity in
  let sorted = ref true in
  while Heap.length h > 0 do
    match Heap.pop_min h with
    | Some (p, _) ->
        if p < !prev then sorted := false;
        prev := p
    | None -> ()
  done;
  check "sorted drain after shrink and regrow" true !sorted

(* ---- Wheel ---- *)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  for i = 0 to 99 do
    Wheel.push w 5.0 i
  done;
  for i = 0 to 99 do
    match Wheel.pop_min w with
    | Some (_, v) -> check_int "fifo order on equal priorities" i v
    | None -> Alcotest.fail "wheel empty too early"
  done

let test_wheel_take_below () =
  let w = Wheel.create () in
  let scratch = Array.make 1 0.0 in
  check "empty" true (Wheel.take_below w 100.0 scratch = None);
  check "scratch = infinity when empty" true (scratch.(0) = infinity);
  Wheel.push w 50.0 "a";
  Wheel.push w 150.0 "b";
  check "below limit pops" true (Wheel.take_below w 100.0 scratch = Some "a");
  check_float "scratch carries the popped priority" 50.0 scratch.(0);
  check "past limit stays queued" true (Wheel.take_below w 100.0 scratch = None);
  check_float "scratch carries the blocked minimum" 150.0 scratch.(0);
  check_int "blocked entry still queued" 1 (Wheel.length w)

(* Differential test against the reference {!Heap}: the calendar queue
   must pop exactly what the heap pops — same priorities, same FIFO
   tie order — under same-timestamp bursts (tiny priority pool, so
   ties are constant) and far-future outliers (entries far past the
   bucket window, exercising the overflow tier and its migration back
   into the buckets). Pushes respect the wheel's precondition: never
   below the last popped priority. *)
let wheel_heap_differential =
  QCheck.Test.make ~name:"wheel matches heap (ties, far-future outliers)"
    ~count:300
    QCheck.(list (option (pair (int_bound 5) bool)))
    (fun ops ->
      let w = Wheel.create ~n_buckets:16 ~width_ns:32.0 () in
      let h = Heap.create () in
      let floor = ref 0.0 in
      let seq = ref 0 in
      let ok = ref true in
      let pop_both () =
        match (Wheel.pop_min w, Heap.pop_min h) with
        | None, None -> false
        | Some (pw, vw), Some (ph, vh) ->
            if pw <> ph || vw <> vh then ok := false else floor := pw;
            true
        | _ ->
            ok := false;
            false
      in
      List.iter
        (fun op ->
          match op with
          | Some (p, far) ->
              let prio =
                !floor
                +. (float_of_int p *. 13.0)
                +. (if far then 1.0e9 else 0.0)
              in
              Wheel.push w prio !seq;
              Heap.push h prio !seq;
              incr seq
          | None -> ignore (pop_both ()))
        ops;
      while pop_both () do
        ()
      done;
      !ok && Wheel.is_empty w && Heap.is_empty h)

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 and b = Prng.create ~seed:123 in
  for _ = 1 to 100 do
    check "same seed, same stream" true (Prng.next a = Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  check "different seeds diverge" true (!same < 4)

let test_prng_split () =
  let a = Prng.create ~seed:9 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  check "split streams diverge" true (!same < 4)

let prng_int_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair (int_bound 1000000) (int_range 1 1000))
    (fun (seed, bound) ->
      let p = Prng.create ~seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prng_float_bounds =
  QCheck.Test.make ~name:"Prng.float in [0,1)" ~count:500 QCheck.(int_bound 1000000)
    (fun seed ->
      let p = Prng.create ~seed in
      let v = Prng.float p in
      v >= 0.0 && v < 1.0)

let test_prng_uniformity () =
  (* Loose chi-square style check over 16 cells. *)
  let p = Prng.create ~seed:77 in
  let cells = Array.make 16 0 in
  let n = 16_000 in
  for _ = 1 to n do
    let i = Prng.int p 16 in
    cells.(i) <- cells.(i) + 1
  done;
  Array.iter
    (fun c ->
      check "cell within 20% of expectation" true
        (abs (c - (n / 16)) < n / 16 / 5))
    cells

(* split_label: same label, same child; labels are independent
   streams; and — the property the fault layer depends on — deriving a
   child never advances the parent. *)
let test_prng_split_label () =
  let a = Prng.create ~seed:9 and a' = Prng.create ~seed:9 in
  let c1 = Prng.split_label a ~label:"fault" in
  let c2 = Prng.split_label a' ~label:"fault" in
  for _ = 1 to 32 do
    check "same label, same stream" true (Prng.next c1 = Prng.next c2)
  done;
  let d = Prng.split_label a ~label:"other" in
  let c3 = Prng.split_label a ~label:"fault" in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next d = Prng.next c3 then incr same
  done;
  check "distinct labels diverge" true (!same < 4)

let test_prng_split_label_parent_unperturbed () =
  let a = Prng.create ~seed:31 and b = Prng.create ~seed:31 in
  let expected = List.init 64 (fun _ -> Prng.next b) in
  let _child = Prng.split_label a ~label:"fault" in
  let got = List.init 64 (fun _ -> Prng.next a) in
  check "parent stream bit-for-bit unchanged" true (got = expected)

(* Statistical smoke over the labeled child: cell balance like the
   parent's uniformity test, so a degenerate label hash (all children
   collapsing onto a few states) would show up immediately. *)
let test_prng_split_label_uniform () =
  let p = Prng.split_label (Prng.create ~seed:77) ~label:"fault" in
  let cells = Array.make 16 0 in
  let n = 16_000 in
  for _ = 1 to n do
    let i = Prng.int p 16 in
    cells.(i) <- cells.(i) + 1
  done;
  Array.iter
    (fun c ->
      check "cell within 20% of expectation" true
        (abs (c - (n / 16)) < n / 16 / 5))
    cells

(* ---- Sim ---- *)

let test_sim_delay_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim (fun () ->
      Sim.delay 30.0;
      log := "b" :: !log);
  Sim.spawn sim (fun () ->
      Sim.delay 10.0;
      log := "a" :: !log;
      Sim.delay 40.0;
      log := "c" :: !log);
  let _ = Sim.run sim () in
  Alcotest.(check (list string)) "event order" [ "a"; "b"; "c" ] (List.rev !log);
  check_float "final time" 50.0 (Sim.now sim)

let test_sim_spawn_counts () =
  let sim = Sim.create () in
  for _ = 1 to 5 do
    Sim.spawn sim (fun () -> Sim.delay 1.0)
  done;
  let _ = Sim.run sim () in
  check_int "spawned" 5 (Sim.spawned sim);
  check_int "finished" 5 (Sim.finished sim)

let test_sim_until_horizon () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn sim (fun () ->
      while true do
        Sim.delay 10.0;
        incr count
      done);
  let _ = Sim.run sim ~until:105.0 () in
  check_int "stopped at horizon" 10 !count;
  check_float "clock clamped" 105.0 (Sim.now sim)

(* Regression for the horizon-clamp bug: when the queue drains before
   [until], the clock must still land on [until] — callers advance
   virtual time window by window and a short window must not leave the
   clock stuck at the last event. *)
let test_sim_until_drain_clamp () =
  let sim = Sim.create () in
  Sim.spawn sim (fun () -> Sim.delay 10.0);
  let _ = Sim.run sim ~until:100.0 () in
  check_float "clock lands on the horizon" 100.0 (Sim.now sim);
  (* Next window starts with nothing queued at all. *)
  let _ = Sim.run sim ~until:250.0 () in
  check_float "advances across an empty window" 250.0 (Sim.now sim)

let test_sim_nested_spawn () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.spawn sim (fun () ->
      Sim.delay 5.0;
      Sim.spawn sim (fun () ->
          Sim.delay 5.0;
          incr hits);
      incr hits);
  let _ = Sim.run sim () in
  check_int "both ran" 2 !hits;
  check_float "time" 10.0 (Sim.now sim)

let test_sim_suspend_resume () =
  let sim = Sim.create () in
  let resume_cell = ref None in
  let got = ref 0 in
  Sim.spawn sim (fun () -> got := Sim.suspend (fun resume -> resume_cell := Some resume));
  Sim.spawn sim (fun () ->
      Sim.delay 42.0;
      match !resume_cell with Some resume -> resume 7 | None -> Alcotest.fail "no waiter");
  let _ = Sim.run sim () in
  check_int "value" 7 !got;
  check_float "resumed at waker's time" 42.0 (Sim.now sim)

let test_sim_outside_process () =
  Alcotest.check_raises "delay outside process"
    (Invalid_argument "Sim.delay: not inside a simulation process") (fun () ->
      (* Make sure no ambient sim is set. *)
      Sim.delay 1.0)

let test_sim_determinism () =
  let run () =
    let sim = Sim.create () in
    let prng = Prng.create ~seed:5 in
    let log = ref [] in
    for i = 0 to 9 do
      Sim.spawn sim (fun () ->
          Sim.delay (Prng.float prng *. 100.0);
          log := i :: !log)
    done;
    let _ = Sim.run sim () in
    !log
  in
  check "two identical runs" true (run () = run ())

(* ---- Mailbox ---- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Sim.spawn sim (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  let _ = Sim.run sim () in
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_send_at () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let at_recv = ref 0.0 in
  Mailbox.send_at mb ~at:25.0 "x";
  Sim.spawn sim (fun () ->
      let _ = Mailbox.recv mb in
      at_recv := Sim.now sim);
  let _ = Sim.run sim () in
  check_float "delivery time" 25.0 !at_recv

let test_mailbox_try_recv () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  check "empty" true (Mailbox.try_recv mb = None);
  Mailbox.send mb 9;
  check "nonempty" true (Mailbox.try_recv mb = Some 9);
  check "drained" true (Mailbox.is_empty mb)

let test_mailbox_recv_timeout () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      (* Arrives in time. *)
      got := Mailbox.recv_timeout mb ~timeout_ns:50.0 :: !got;
      (* Nothing arrives: timeout fires, time has advanced. *)
      got := Mailbox.recv_timeout mb ~timeout_ns:30.0 :: !got;
      got := (Some (int_of_float (Sim.now sim)) : int option) :: !got);
  Mailbox.send_at mb ~at:20.0 7;
  let _ = Sim.run sim () in
  Alcotest.(check (list (option int)))
    "value, then timeout at +30"
    [ Some 7; None; Some 50 ]
    (List.rev !got)

(* A timeout that already fired must not clobber the waiter of a later
   receive on the same mailbox: the second recv installs a fresh
   waiter, and only the stale timeout's own waiter may be removed. *)
let test_mailbox_recv_timeout_stale () =
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      got := Mailbox.recv_timeout mb ~timeout_ns:10.0 :: !got;
      (* Re-arm immediately; the message lands at t=40, well after the
         first timeout's cancel event has been and gone. *)
      got := Mailbox.recv_timeout mb ~timeout_ns:1_000.0 :: !got);
  Mailbox.send_at mb ~at:40.0 3;
  let _ = Sim.run sim () in
  Alcotest.(check (list (option int)))
    "timeout then delivery" [ None; Some 3 ] (List.rev !got)

(* Boundary: the timeout deadline lands on the exact tick the message
   arrives. Events at equal timestamps run FIFO by schedule order, so
   whichever side was scheduled first wins — deterministically. *)
let test_mailbox_recv_timeout_boundary () =
  (* Delivery scheduled before the receiver suspends: at the shared
     tick the delivery runs first and the timeout is inert. *)
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Mailbox.send_at mb ~at:20.0 7;
  Sim.spawn sim (fun () ->
      got := Mailbox.recv_timeout mb ~timeout_ns:20.0 :: !got);
  let _ = Sim.run sim () in
  Alcotest.(check (list (option int))) "delivery wins the tie" [ Some 7 ]
    (List.rev !got);
  (* Timeout scheduled before the delivery (the sender only schedules
     it at t=10, after the receiver suspended at t=0): the cancel runs
     first at the shared tick, and the message survives in the queue
     for a later receive. *)
  let sim = Sim.create () in
  let mb = Mailbox.create sim in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      got := Mailbox.recv_timeout mb ~timeout_ns:20.0 :: !got);
  Sim.spawn sim (fun () ->
      Sim.delay 10.0;
      Mailbox.send_at mb ~at:20.0 8);
  let _ = Sim.run sim () in
  Alcotest.(check (list (option int))) "timeout wins the tie" [ None ]
    (List.rev !got);
  Alcotest.(check (option int)) "message still queued" (Some 8)
    (Mailbox.try_recv mb)

(* ---- Ivar ---- *)

let test_ivar_fill_read () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let got = ref [] in
  for _ = 1 to 2 do
    Sim.spawn sim (fun () ->
        (* Bind first: [!got] must be read after the suspending read. *)
        let v = Ivar.read iv in
        got := v :: !got)
  done;
  Sim.spawn sim (fun () ->
      Sim.delay 10.0;
      Ivar.fill iv 5);
  let _ = Sim.run sim () in
  Alcotest.(check (list int)) "both woken" [ 5; 5 ] !got;
  check "filled" true (Ivar.is_filled iv)

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "double fill" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv 2)

let test_ivar_try_read () =
  let iv = Ivar.create () in
  Alcotest.(check (option int)) "empty" None (Ivar.try_read iv);
  Ivar.fill iv 3;
  Alcotest.(check (option int)) "filled" (Some 3) (Ivar.try_read iv)

let suite =
  [
    ("heap: pop order", `Quick, test_heap_order);
    ("heap: FIFO on ties", `Quick, test_heap_fifo_ties);
    ("heap: peek", `Quick, test_heap_peek);
    QCheck_alcotest.to_alcotest heap_sorted_prop;
    QCheck_alcotest.to_alcotest heap_model_prop;
    ("heap: no retention after pop", `Quick, test_heap_no_retention);
    ("heap: shrink on drain, then regrow", `Quick, test_heap_shrink_regrow);
    ("wheel: FIFO on ties", `Quick, test_wheel_fifo_ties);
    ("wheel: take_below", `Quick, test_wheel_take_below);
    QCheck_alcotest.to_alcotest wheel_heap_differential;
    ("prng: deterministic", `Quick, test_prng_deterministic);
    ("prng: seeds differ", `Quick, test_prng_seeds_differ);
    ("prng: split diverges", `Quick, test_prng_split);
    QCheck_alcotest.to_alcotest prng_int_bounds;
    QCheck_alcotest.to_alcotest prng_float_bounds;
    ("prng: roughly uniform", `Quick, test_prng_uniformity);
    ("prng: split_label deterministic per label", `Quick, test_prng_split_label);
    ( "prng: split_label leaves parent untouched",
      `Quick,
      test_prng_split_label_parent_unperturbed );
    ("prng: split_label child uniform", `Quick, test_prng_split_label_uniform);
    ("sim: delay ordering", `Quick, test_sim_delay_order);
    ("sim: spawn counts", `Quick, test_sim_spawn_counts);
    ("sim: until horizon", `Quick, test_sim_until_horizon);
    ("sim: until clamps after drain", `Quick, test_sim_until_drain_clamp);
    ("sim: nested spawn", `Quick, test_sim_nested_spawn);
    ("sim: suspend/resume", `Quick, test_sim_suspend_resume);
    ("sim: effects outside process", `Quick, test_sim_outside_process);
    ("sim: deterministic", `Quick, test_sim_determinism);
    ("mailbox: FIFO", `Quick, test_mailbox_fifo);
    ("mailbox: send_at", `Quick, test_mailbox_send_at);
    ("mailbox: try_recv", `Quick, test_mailbox_try_recv);
    ("mailbox: recv_timeout", `Quick, test_mailbox_recv_timeout);
    ("mailbox: stale timeout is inert", `Quick, test_mailbox_recv_timeout_stale);
    ( "mailbox: timeout exactly at arrival tick",
      `Quick,
      test_mailbox_recv_timeout_boundary );
    ("ivar: fill wakes readers", `Quick, test_ivar_fill_read);
    ("ivar: double fill rejected", `Quick, test_ivar_double_fill);
    ("ivar: try_read", `Quick, test_ivar_try_read);
  ]
