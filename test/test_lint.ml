(* tm2c-lint analyzer over the seeded-violation corpus in
   fixtures/lint/: every rule family is exercised against files whose
   expected findings are asserted exactly (file:line: rule), the .mli
   doc-comment regression stays silent, and the retired line-scanner's
   substring predicate is reproduced inline to prove both of its
   failure modes — the alias-laundered wall-clock read it misses and
   the doc-comment mention it falsely flags. *)

open Tm2c_analysis

(* dune runtest runs with cwd test/; dune exec test/main.exe runs from
   the workspace root. *)
let fixtures_root =
  if Sys.file_exists "fixtures/lint" then "fixtures/lint"
  else Filename.concat "test" "fixtures/lint"

let fx name = Filename.concat fixtures_root name

let sigs fs =
  List.map
    (fun (f : Finding.t) ->
      Printf.sprintf "%s:%d: %s" f.Finding.file f.Finding.line f.Finding.rule)
    fs

let run_calls ?(det = true) ?(recv = false) file =
  Calls.run ~file ~scope:{ Calls.det; recv } (Ast_io.parse_file file)

let check_sigs msg expected actual =
  Alcotest.(check (list string)) msg expected (sigs actual)

(* The predicate the retired bench/lint.ml regex scanner applied:
   a line mentioning the banned name verbatim, wherever it appears. *)
let substring_scanner_hits path needle =
  let ic = open_in path in
  let contains line =
    let n = String.length needle and l = String.length line in
    let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
    go 0
  in
  let rec count acc =
    match input_line ic with
    | line -> count (if contains line then acc + 1 else acc)
    | exception End_of_file ->
        close_in ic;
        acc
  in
  count 0

let test_alias_launder () =
  let file = fx "alias_launder.ml" in
  check_sigs "alias-laundered wall-clock reads resolved through scope"
    [
      file ^ ":7: wall-clock";
      file ^ ":10: open-nondet";
      file ^ ":11: wall-clock";
    ]
    (run_calls file);
  Alcotest.(check int)
    "the substring scanner sees no verbatim Unix.gettimeofday here" 0
    (substring_scanner_hits file "Unix.gettimeofday")

let test_doc_comment_regression () =
  let file = fx "doc_comment.mli" in
  check_sigs "interface doc comments produce no findings" []
    (run_calls file);
  Alcotest.(check bool)
    "while the substring scanner would falsely flag the doc comment" true
    (substring_scanner_hits file "Sys.time" > 0
    && substring_scanner_hits file "Obj.magic" > 0)

let test_partiality () =
  let file = fx "partial.ml" in
  check_sigs "List.hd, Option.get and naked failwith all fire"
    [
      file ^ ":3: partial-call";
      file ^ ":5: partial-call";
      file ^ ":7: naked-failwith";
    ]
    (run_calls file)

let test_nondet () =
  let file = fx "nondet.ml" in
  check_sigs "env read, Random, hash-order, Domain, and the open"
    [
      file ^ ":4: env-read";
      file ^ ":6: stdlib-random";
      file ^ ":8: hashtbl-order";
      file ^ ":10: domain-use";
      file ^ ":12: open-nondet";
      file ^ ":14: stdlib-random";
    ]
    (run_calls file)

let test_det_scope_off () =
  (* The same file outside the determinism discipline (bench/bin
     scope): only the everywhere-rules remain, and nondet.ml has
     none of those. *)
  check_sigs "determinism rules stay quiet outside lib scope" []
    (run_calls ~det:false (fx "nondet.ml"))

let test_untimed_recv () =
  let file = fx "recv_loop.ml" in
  check_sigs "untimed blocking receive in recv scope"
    [ file ^ ":5: untimed-recv" ]
    (run_calls ~recv:true file);
  check_sigs "silent outside recv scope" [] (run_calls file)

let test_clean () =
  check_sigs "control file stays clean" [] (run_calls (fx "clean.ml"))

let test_global_state () =
  let file = fx "global_state.ml" in
  let entries = Mutstate.run ~file (Ast_io.parse_file file) in
  Alcotest.(check (list string))
    "inventory names, kinds and statuses"
    [
      "counter/ref/violation";
      "table/hashtbl/violation";
      "names/const-table/const-table";
      "seed_cell/mutable-record/violation";
    ]
    (List.map
       (fun (e : Mutstate.entry) ->
         Printf.sprintf "%s/%s/%s" e.Mutstate.e_name e.Mutstate.e_kind
           e.Mutstate.e_status)
       entries);
  check_sigs "const tables raise no finding"
    [
      file ^ ":4: global-mutable";
      file ^ ":6: global-mutable";
      file ^ ":12: global-mutable";
    ]
    (Mutstate.to_findings entries)

let test_exporter_exhaustiveness () =
  let ctors =
    match Exhaustive.event_constructors (Ast_io.parse_file (fx "event.mli")) with
    | Ok cs -> cs
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check int) "fixture vocabulary parsed" 11 (List.length ctors);
  let file = fx "exporter_copy.ml" in
  let fs =
    List.sort Finding.order
      (Exhaustive.check_file ~file ~ctors (Ast_io.parse_file file))
  in
  let missing =
    List.filter_map
      (fun (f : Finding.t) ->
        if f.Finding.rule = "exporter-exhaustive" then f.Finding.symbol else None)
      fs
  in
  Alcotest.(check (list string))
    "every unhandled constructor is named"
    [
      "Barrier";
      "Core_crash";
      "Heartbeat";
      "Lock_grant";
      "Lock_release";
      "Lock_req";
      "Tx_read";
      "Tx_write";
    ]
    (List.sort compare missing);
  Alcotest.(check bool)
    "and the catch-all is flagged as a wildcard" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.rule = "exporter-wildcard" && f.Finding.line = 5)
       fs)

let test_waivers_and_stale () =
  let cfg =
    {
      Lint.roots = [ fixtures_root ];
      det_prefixes = [ fixtures_root ];
      recv_prefixes = [ fixtures_root ];
      mli_required = [];
      exporters = [ fx "exporter_copy.ml" ];
      event_mli = Some (fx "event.mli");
      waivers =
        [
          Waiver.v ~file:"partial.ml" ~rule:"partial-call"
            "test waiver: suppresses both partial calls, not the failwith";
          Waiver.v ~file:"clean.ml" ~rule:"obj-magic"
            "test waiver: matches nothing and must be reported stale";
        ];
    }
  in
  let report = Lint.run cfg in
  let active = Lint.active report in
  Alcotest.(check int) "active findings over the whole corpus" 24
    (List.length active);
  let waived =
    List.filter (fun (f : Finding.t) -> f.Finding.waived) report.Lint.findings
  in
  Alcotest.(check (list string))
    "exactly the two partial calls are waived"
    [
      fx "partial.ml" ^ ":3: partial-call"; fx "partial.ml" ^ ":5: partial-call";
    ]
    (sigs waived);
  Alcotest.(check bool)
    "the unmatched waiver surfaces as stale" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.rule = "stale-waiver" && f.Finding.file = "clean.ml")
       active);
  Alcotest.(check bool)
    "the failwith in the waived file stays active" true
    (List.exists
       (fun (f : Finding.t) ->
         f.Finding.rule = "naked-failwith"
         && f.Finding.file = fx "partial.ml")
       active)

let test_json_report_shape () =
  let cfg =
    {
      Lint.roots = [ fixtures_root ];
      det_prefixes = [ fixtures_root ];
      recv_prefixes = [ fixtures_root ];
      mli_required = [];
      exporters = [ fx "exporter_copy.ml" ];
      event_mli = Some (fx "event.mli");
      waivers = [];
    }
  in
  let report = Lint.run cfg in
  let json = Lint.findings_json report in
  (* Parse with the project's own JSON reader: the export must be
     well-formed and carry the promised envelope. *)
  match Tm2c_harness.Json.of_string json with
  | Tm2c_harness.Json.Obj kvs ->
      Alcotest.(check bool)
        "tool tag present" true
        (List.assoc_opt "tool" kvs = Some (Tm2c_harness.Json.String "tm2c-lint"));
      let summary =
        match List.assoc_opt "summary" kvs with
        | Some (Tm2c_harness.Json.Obj s) -> s
        | _ -> Alcotest.fail "summary object missing"
      in
      Alcotest.(check bool)
        "summary totals reconcile with the findings list" true
        (List.assoc_opt "total" summary
        = Some (Tm2c_harness.Json.Int (List.length report.Lint.findings)))
  | _ -> Alcotest.fail "findings_json did not produce a JSON object"

let suite =
  [
    Alcotest.test_case "alias-laundered wall-clock caught" `Quick
      test_alias_launder;
    Alcotest.test_case "mli doc comments stay silent" `Quick
      test_doc_comment_regression;
    Alcotest.test_case "partiality rules" `Quick test_partiality;
    Alcotest.test_case "nondeterminism rules" `Quick test_nondet;
    Alcotest.test_case "det scope gating" `Quick test_det_scope_off;
    Alcotest.test_case "untimed recv" `Quick test_untimed_recv;
    Alcotest.test_case "clean control file" `Quick test_clean;
    Alcotest.test_case "global-state inventory" `Quick test_global_state;
    Alcotest.test_case "exporter exhaustiveness" `Quick
      test_exporter_exhaustiveness;
    Alcotest.test_case "waivers and stale detection" `Quick
      test_waivers_and_stale;
    Alcotest.test_case "json report shape" `Quick test_json_report_shape;
  ]
