(* Fault-injection and protocol-hardening tests: plan spec round-trip,
   the empty-plan bit-for-bit determinism guarantee, duplicate-request
   absorption, timeout/resend under drops and under timeouts shorter
   than the round trip, DS-server stall windows, and lease reclamation
   unblocking writers after a crash — asserted on outcome and on the
   emitted event sequence. *)

open Tm2c_core
open Tm2c_noc
open Tm2c_check

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(total = 16) ?(policy = Cm.Fair_cm) ?(seed = 42) () =
  {
    Runtime.platform = Platform.scc;
    total_cores = total;
    service_cores = total / 2;
    deployment = Runtime.Dedicated;
    policy;
    wmode = Tx.Lazy;
    batching = true;
    max_skew_ns = 3_000.0;
    seed;
    mem_words = 1 lsl 18;
  }

(* Shared-counter window run (every app core increments one word),
   with the collector tapped in and the fault/hardening knobs
   exposed. Returns the runtime, the workload result, and the
   complete event history. *)
let run_counter ?plan ?(timeout_ns = 0.0) ?(lease_ns = 0.0)
    ?(policy = Cm.Fair_cm) ?(seed = 42) ?(duration_ms = 0.5) () =
  let t = Runtime.create (cfg ~policy ~seed ()) in
  (match plan with Some p -> Runtime.set_fault_plan t p | None -> ());
  if timeout_ns > 0.0 || lease_ns > 0.0 then
    Runtime.set_hardening t ~timeout_ns ~lease_ns ();
  let col = Collector.create () in
  Collector.attach col (Runtime.trace t);
  let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
  let r =
    Tm2c_apps.Workload.drive t ~duration_ns:(duration_ms *. 1e6)
      (fun _core ctx _prng () ->
        Tx.atomic ctx (fun () -> Tx.write ctx counter (Tx.read ctx counter + 1)))
  in
  Collector.detach (Runtime.trace t);
  (t, r, Collector.to_list col)

let plan_of_spec s =
  match Fault.of_spec s with
  | Ok p -> p
  | Error m -> Alcotest.failf "of_spec %S: %s" s m

(* ---- plan spec ---- *)

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      let p = plan_of_spec s in
      check ("round-trip " ^ s) true (Fault.of_spec (Fault.to_spec p) = Ok p))
    [
      "none";
      "drop=0.01";
      "dup=0.02";
      "delay=0.05@2000";
      "reorder=0.1@3000";
      "drop=0.01,dup=0.02,delay=0.05@2000";
      "stall=8@1e6+5e5";
      "crash=3@2e6";
      "scrash=4@3e5";
      "part=1-4@1e5+2e5";
      "drop=0.01,dup=0.02,delay=0.05@2000,stall=8@1e6+5e5,crash=3@2e6";
      "drop=0.005,reorder=0.1@3000,scrash=2@3e5,part=1-4@1e5+2e5";
    ];
  check "none is the empty plan" true (plan_of_spec "none" = Fault.empty);
  List.iter
    (fun s ->
      check ("rejected: " ^ s) true
        (match Fault.of_spec s with Error _ -> true | Ok _ -> false))
    [
      "bogus";
      "drop=x";
      "drop=0.01,";
      "stall=1";
      "crash=z@1e6";
      (* unknown key: must be refused, not silently ignored *)
      "warp=0.1";
      (* reorder needs its spike bound *)
      "reorder=0.1";
      "reorder=x@3000";
      (* scrash needs an instant and a valid core *)
      "scrash=1";
      "scrash=x@1e6";
      "scrash=2@z";
      (* partitions need both endpoints and a full window *)
      "part=1@1e5+2e5";
      "part=1-x@1e5+2e5";
      "part=1-4@1e5";
      "part=1-4";
    ]

(* ---- determinism ---- *)

(* The fault layer draws from its own [Prng.split_label] stream, so
   installing the *empty* plan must reproduce the no-fault run
   bit-for-bit: same counts and the same event stream, timestamps
   included (hardening off on both sides — its timeout bookkeeping
   adds heap events of its own). *)
let test_empty_plan_bit_for_bit () =
  let _, r0, ev0 = run_counter () in
  let _, r1, ev1 = run_counter ~plan:Fault.empty () in
  check_int "commits equal" r0.Tm2c_apps.Workload.commits
    r1.Tm2c_apps.Workload.commits;
  check_int "aborts equal" r0.Tm2c_apps.Workload.aborts
    r1.Tm2c_apps.Workload.aborts;
  check "event streams identical" true (ev0 = ev1)

(* ---- duplicate absorption ---- *)

let test_duplicate_absorption () =
  let t, r, events = run_counter ~plan:(plan_of_spec "dup=1.0") () in
  let c = Fault.counters (Runtime.faults t) in
  check "every message duplicated" true (c.Fault.duplicated > 0);
  check "server absorbed duplicate requests" true (c.Fault.absorbed > 0);
  check "progress despite duplicates" true (r.Tm2c_apps.Workload.commits > 0);
  check "Msg_duplicated events traced" true
    (List.exists
       (fun (_, ev) -> match ev with Event.Msg_duplicated _ -> true | _ -> false)
       events);
  let res = Check.run_list events in
  check "checkers pass under full duplication" true (Check.passed res)

(* ---- drops, timeouts, resends ---- *)

let test_drop_resend () =
  let t, r, events =
    run_counter ~plan:(plan_of_spec "drop=0.3") ~timeout_ns:30_000.0
      ~lease_ns:250_000.0 ()
  in
  let c = Fault.counters (Runtime.faults t) in
  check "messages dropped" true (c.Fault.dropped > 0);
  check "timeouts resent" true (c.Fault.resends > 0);
  check "progress despite drops" true (r.Tm2c_apps.Workload.commits > 0);
  let resent =
    List.filter_map
      (fun (_, ev) ->
        match ev with Event.Req_resent { nth; _ } -> Some nth | _ -> None)
      events
  in
  check "Req_resent events traced" true (resent <> []);
  check "nth counts from 1" true (List.mem 1 resent);
  let res = Check.run_list events in
  check "checkers pass under drops" true (Check.passed res)

(* Timeout shorter than the request round trip: every request is
   resent while the original reply is still in flight, so the
   late-original / resend races all happen — the server must absorb
   the duplicate requests and the requester the duplicate replies. *)
let test_timeout_below_rtt () =
  let t, r, events = run_counter ~timeout_ns:1_000.0 () in
  let c = Fault.counters (Runtime.faults t) in
  check "resends without any injected fault" true (c.Fault.resends > 0);
  check "duplicates absorbed at the server" true (c.Fault.absorbed > 0);
  check "progress despite the resend storm" true
    (r.Tm2c_apps.Workload.commits > 0);
  let res = Check.run_list events in
  check "checkers pass with timeout < RTT" true (Check.passed res)

(* ---- DS-server stall windows ---- *)

let test_stall_window () =
  (* Allocation is deterministic, so a probe run tells us which DS
     server homes the counter word — stall that one, or the window
     would go unnoticed. *)
  let owner =
    let t = Runtime.create (cfg ()) in
    let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
    (Runtime.env t).System.owner_of counter
  in
  let t, r, events =
    run_counter
      ~plan:(plan_of_spec (Printf.sprintf "stall=%d@1e5+2e5" owner))
      ~timeout_ns:30_000.0 ~duration_ms:1.0 ()
  in
  let c = Fault.counters (Runtime.faults t) in
  check "stall provoked resends" true (c.Fault.resends > 0);
  check "progress after the stall" true (r.Tm2c_apps.Workload.commits > 0);
  let res = Check.run_list events in
  check "checkers pass across the stall" true (Check.passed res)

(* A resend that lands while the original still sits in the stalled
   server's mailbox must be absorbed exactly once the server wakes:
   the event sequence shows at most one [Service] per (server,
   requester, req_id), and at least one id that was resent during the
   stall is serviced exactly once — the duplicate is answered from
   cache or dropped, never re-executed. *)
let test_stall_resend_absorbed_once () =
  let owner =
    let t = Runtime.create (cfg ()) in
    let counter = Tm2c_memory.Alloc.alloc (Runtime.alloc t) ~words:1 in
    (Runtime.env t).System.owner_of counter
  in
  let t, r, events =
    run_counter
      ~plan:(plan_of_spec (Printf.sprintf "stall=%d@1e5+2e5" owner))
      ~timeout_ns:30_000.0 ~duration_ms:1.0 ()
  in
  let c = Fault.counters (Runtime.faults t) in
  check "the stall provoked resends" true (c.Fault.resends > 0);
  check "duplicates were absorbed" true (c.Fault.absorbed > 0);
  let served = Hashtbl.create 64 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Event.Service { server; requester; req_id; _ } when req_id > 0 ->
          let k = (server, requester, req_id) in
          Hashtbl.replace served k
            (1 + Option.value ~default:0 (Hashtbl.find_opt served k))
      | _ -> ())
    events;
  Hashtbl.iter
    (fun (server, requester, req_id) n ->
      if n > 1 then
        Alcotest.failf
          "request (server %d, requester %d, id %d) serviced %d times" server
          requester req_id n)
    served;
  let resent =
    List.filter_map
      (fun (_, ev) ->
        match ev with
        | Event.Req_resent { core; server; req_id; _ } ->
            Some (server, core, req_id)
        | _ -> None)
      events
  in
  check "some request was resent" true (resent <> []);
  check "a resent request was serviced exactly once" true
    (List.exists (fun k -> Hashtbl.find_opt served k = Some 1) resent);
  check "progress after the stall" true (r.Tm2c_apps.Workload.commits > 0);
  check "checkers pass" true (Check.passed (Check.run_list events))

(* ---- crash + lease reclamation ---- *)

(* Find a crash instant that lands while core 3 holds its read lock on
   the counter (between the grant and the commit-time status poll),
   wedging every writer under the requester-always-loses policy:
   with leases disabled the run makes no progress at all past the
   crash. Returns the wedging plan. *)
let find_wedge () =
  let rec go = function
    | [] -> Alcotest.fail "no crash instant in the sweep wedged the run"
    | at :: rest ->
        let spec = Printf.sprintf "crash=3@%g" at in
        let plan = plan_of_spec spec in
        let _, r, _ =
          run_counter ~plan ~policy:Cm.Backoff_retry ~seed:1 ~duration_ms:2.0 ()
        in
        if r.Tm2c_apps.Workload.commits = 0 then plan else go rest
  in
  go [ 1e5; 2e5; 3e5; 4e5; 5e5 ]

let test_crash_wedges_without_leases () =
  let plan = find_wedge () in
  let t, r, events =
    run_counter ~plan ~policy:Cm.Backoff_retry ~seed:1 ~duration_ms:2.0 ()
  in
  (* The run terminates (hard virtual horizon) with zero commits: the
     orphan read lock blocks every writer and no one may revoke it. *)
  check_int "no commits while wedged" 0 r.Tm2c_apps.Workload.commits;
  check "crash recorded" true (Fault.is_crashed (Runtime.faults t) ~core:3);
  check "Core_crashed traced for core 3" true
    (List.exists
       (fun (_, ev) ->
         match ev with Event.Core_crashed { core = 3; _ } -> true | _ -> false)
       events);
  (* The crashed core's open attempt is not a violation: it closes as
     Unfinished, exactly like run-horizon truncation. *)
  let res = Check.run_list events in
  check "no safety violation from the crash" true
    (Lockset.ok res.Check.lockset && res.Check.history.History.anomalies = []);
  check "crashed core's attempt is Unfinished" true
    (List.exists
       (fun (a : History.attempt) ->
         a.History.a_core = 3 && a.History.a_outcome = History.Unfinished)
       res.Check.history.History.attempts)

let test_lease_reclaim_unblocks () =
  let plan = find_wedge () in
  let t, r, events =
    run_counter ~plan ~policy:Cm.Backoff_retry ~seed:1 ~duration_ms:2.0
      ~lease_ns:250_000.0 ()
  in
  let c = Fault.counters (Runtime.faults t) in
  check "writers unblocked" true (r.Tm2c_apps.Workload.commits > 0);
  check "a lease was reclaimed" true (c.Fault.leases_reclaimed > 0);
  (* Event sequence: the crash precedes the reclaim of its orphan, and
     the reclaim precedes the first commit after it. *)
  let idx p =
    let rec go i = function
      | [] -> None
      | (_, ev) :: rest -> if p ev then Some i else go (i + 1) rest
    in
    go 0 events
  in
  let crash_i =
    idx (function Event.Core_crashed { core = 3; _ } -> true | _ -> false)
  in
  let reclaim_i =
    idx (function Event.Lease_reclaimed { victim = 3; _ } -> true | _ -> false)
  in
  (match (crash_i, reclaim_i) with
  | Some ci, Some ri -> check "crash precedes reclaim" true (ci < ri)
  | _ -> Alcotest.fail "missing Core_crashed or Lease_reclaimed event");
  (match reclaim_i with
  | Some ri ->
      let commit_after =
        List.exists
          (fun (i, (_, ev)) ->
            i > ri && match ev with Event.Tx_committed _ -> true | _ -> false)
          (List.mapi (fun i e -> (i, e)) events)
      in
      check "a commit follows the reclaim" true commit_after
  | None -> ());
  let res = Check.run_list events in
  check "checkers pass with leases on" true (Check.passed res)

let suite =
  [
    ("fault: plan spec round-trip", `Quick, test_spec_roundtrip);
    ("fault: empty plan is bit-for-bit baseline", `Quick, test_empty_plan_bit_for_bit);
    ("fault: duplicate requests absorbed", `Quick, test_duplicate_absorption);
    ("fault: drops recovered by resend", `Quick, test_drop_resend);
    ("fault: timeout below RTT races", `Quick, test_timeout_below_rtt);
    ("fault: DS-server stall window", `Quick, test_stall_window);
    ( "fault: resend after stall absorbed exactly once",
      `Quick,
      test_stall_resend_absorbed_once );
    ("fault: crash wedges without leases", `Quick, test_crash_wedges_without_leases);
    ("fault: lease reclaim unblocks writers", `Quick, test_lease_reclaim_unblocks);
  ]
