(* Tests for the shared-memory substrate: shmem, allocator, atomic
   registers, and the coherent-cache model. *)

open Tm2c_engine
open Tm2c_noc
open Tm2c_memory

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_sim platform f =
  let sim = Sim.create () in
  let shmem = Shmem.create sim platform ~words:(1 lsl 18) in
  f sim shmem

(* ---- Shmem ---- *)

let test_shmem_rw () =
  with_sim Platform.scc (fun sim shmem ->
      Sim.spawn sim (fun () ->
          Shmem.write shmem ~core:0 100 42;
          check_int "read back" 42 (Shmem.read shmem ~core:1 100));
      let _ = Sim.run sim () in
      check_int "peek" 42 (Shmem.peek shmem 100);
      check_int "reads counted" 1 (Shmem.n_reads shmem);
      check_int "writes counted" 1 (Shmem.n_writes shmem))

let test_shmem_poke () =
  with_sim Platform.scc (fun _sim shmem ->
      Shmem.poke shmem 5 99;
      check_int "poke visible" 99 (Shmem.peek shmem 5);
      check_int "poke untimed/uncounted" 0 (Shmem.n_writes shmem))

let test_shmem_latency () =
  with_sim Platform.scc (fun sim shmem ->
      Sim.spawn sim (fun () -> ignore (Shmem.read shmem ~core:0 10));
      let _ = Sim.run sim () in
      let expected =
        Platform.mem_read_ns Platform.scc ~core:0 ~mc:(Shmem.mc_of_addr shmem 10)
      in
      Alcotest.(check (float 0.01)) "read latency charged" expected (Sim.now sim))

let test_shmem_mc_striping () =
  with_sim Platform.scc (fun _sim shmem ->
      (* Contiguous small structures live in one controller. *)
      check_int "same region, same mc" (Shmem.mc_of_addr shmem 0)
        (Shmem.mc_of_addr shmem 1000);
      (* Distinct 64Ki-word regions rotate over the 4 controllers. *)
      check "regions spread over controllers" true
        (Shmem.mc_of_addr shmem 0 <> Shmem.mc_of_addr shmem (1 lsl 16)))

let test_cache_hit_faster () =
  with_sim Platform.opteron (fun sim shmem ->
      let miss = ref 0.0 and hit = ref 0.0 in
      Sim.spawn sim (fun () ->
          let t0 = Sim.now sim in
          ignore (Shmem.read shmem ~core:0 50);
          miss := Sim.now sim -. t0;
          let t1 = Sim.now sim in
          ignore (Shmem.read shmem ~core:0 50);
          hit := Sim.now sim -. t1);
      let _ = Sim.run sim () in
      check "cache hit cheaper than miss" true (!hit < !miss /. 2.0))

let test_cache_invalidation () =
  with_sim Platform.opteron (fun sim shmem ->
      let second = ref 0.0 in
      Sim.spawn sim (fun () ->
          ignore (Shmem.read shmem ~core:0 60);
          (* Remote write invalidates core 0's copy. *)
          Shmem.write shmem ~core:1 60 7;
          let t0 = Sim.now sim in
          check_int "fresh value" 7 (Shmem.read shmem ~core:0 60);
          second := Sim.now sim -. t0);
      let _ = Sim.run sim () in
      check "invalidated read is a miss" true
        (!second >= Platform.opteron.Platform.mem_base_ns))

let test_no_cache_on_scc () =
  with_sim Platform.scc (fun sim shmem ->
      let a = ref 0.0 and b = ref 0.0 in
      Sim.spawn sim (fun () ->
          let t0 = Sim.now sim in
          ignore (Shmem.read shmem ~core:0 70);
          a := Sim.now sim -. t0;
          let t1 = Sim.now sim in
          ignore (Shmem.read shmem ~core:0 70);
          b := Sim.now sim -. t1);
      let _ = Sim.run sim () in
      Alcotest.(check (float 0.01)) "non-coherent: repeat read same cost" !a !b)

(* ---- Alloc ---- *)

let test_alloc_basic () =
  with_sim Platform.scc (fun _sim shmem ->
      let a = Alloc.create shmem ~base:1 ~limit:100 in
      let x = Alloc.alloc a ~words:10 in
      let y = Alloc.alloc a ~words:10 in
      check "disjoint blocks" true (y >= x + 10 || x >= y + 10);
      check_int "live words" 20 (Alloc.live_words a))

let test_alloc_reuse_fifo () =
  with_sim Platform.scc (fun _sim shmem ->
      let a = Alloc.create shmem ~base:1 ~limit:100 in
      let x = Alloc.alloc a ~words:2 in
      let y = Alloc.alloc a ~words:2 in
      Alloc.free a x ~words:2;
      Alloc.free a y ~words:2;
      (* FIFO reuse: x comes back before y (delays ABA). *)
      check_int "fifo reuse" x (Alloc.alloc a ~words:2);
      check_int "then y" y (Alloc.alloc a ~words:2))

let test_alloc_oom () =
  with_sim Platform.scc (fun _sim shmem ->
      let a = Alloc.create shmem ~base:1 ~limit:10 in
      let _ = Alloc.alloc a ~words:8 in
      Alcotest.check_raises "out of memory" Out_of_memory (fun () ->
          ignore (Alloc.alloc a ~words:8)))

let test_alloc_size_classes () =
  with_sim Platform.scc (fun _sim shmem ->
      let a = Alloc.create shmem ~base:1 ~limit:100 in
      let x = Alloc.alloc a ~words:4 in
      Alloc.free a x ~words:4;
      (* A different size class does not reuse the freed block. *)
      let y = Alloc.alloc a ~words:2 in
      check "size classes are separate" true (y <> x || y = x && false))

(* ---- Atomic registers ---- *)

let test_tas () =
  let sim = Sim.create () in
  let regs = Atomic_reg.create sim Platform.scc ~count:4 in
  Sim.spawn sim (fun () ->
      check "first tas acquires" true (Atomic_reg.tas regs ~core:0 ~reg:1);
      check "second tas fails" false (Atomic_reg.tas regs ~core:1 ~reg:1);
      Atomic_reg.write regs ~core:0 ~reg:1 0;
      check "after release, tas acquires" true (Atomic_reg.tas regs ~core:1 ~reg:1));
  let _ = Sim.run sim () in
  ()

let test_cas () =
  let sim = Sim.create () in
  let regs = Atomic_reg.create sim Platform.scc ~count:4 in
  Sim.spawn sim (fun () ->
      Atomic_reg.write regs ~core:0 ~reg:2 10;
      check "cas succeeds on match" true
        (Atomic_reg.cas regs ~core:0 ~reg:2 ~expect:10 ~repl:11);
      check "cas fails on mismatch" false
        (Atomic_reg.cas regs ~core:0 ~reg:2 ~expect:10 ~repl:12);
      check_int "value is from the successful cas" 11 (Atomic_reg.read regs ~core:0 ~reg:2));
  let _ = Sim.run sim () in
  ()

let test_reg_latency () =
  let sim = Sim.create () in
  let regs = Atomic_reg.create sim Platform.scc ~count:1 in
  Sim.spawn sim (fun () -> ignore (Atomic_reg.read regs ~core:0 ~reg:0));
  let _ = Sim.run sim () in
  Alcotest.(check (float 0.01)) "register access charged"
    Platform.scc.Platform.tas_ns (Sim.now sim)

let alloc_no_overlap =
  QCheck.Test.make ~name:"allocator never hands out overlapping live blocks" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 40) (int_range 1 8))
    (fun sizes ->
      let sim = Sim.create () in
      let shmem = Shmem.create sim Platform.scc ~words:4096 in
      let a = Alloc.create shmem ~base:1 ~limit:4000 in
      let live = Hashtbl.create 16 in
      let ok = ref true in
      List.iteri
        (fun i words ->
          let addr = Alloc.alloc a ~words in
          for w = addr to addr + words - 1 do
            if Hashtbl.mem live w then ok := false;
            Hashtbl.add live w ()
          done;
          (* Free every other block to exercise reuse. *)
          if i mod 2 = 0 then begin
            for w = addr to addr + words - 1 do
              Hashtbl.remove live w
            done;
            Alloc.free a addr ~words
          end)
        sizes;
      !ok)

let suite =
  [
    ("shmem: read/write/peek", `Quick, test_shmem_rw);
    ("shmem: poke untimed", `Quick, test_shmem_poke);
    ("shmem: read latency", `Quick, test_shmem_latency);
    ("shmem: controller striping", `Quick, test_shmem_mc_striping);
    ("shmem: coherent cache hit", `Quick, test_cache_hit_faster);
    ("shmem: coherent invalidation", `Quick, test_cache_invalidation);
    ("shmem: SCC has no cache", `Quick, test_no_cache_on_scc);
    ("alloc: basic", `Quick, test_alloc_basic);
    ("alloc: FIFO reuse", `Quick, test_alloc_reuse_fifo);
    ("alloc: out of memory", `Quick, test_alloc_oom);
    ("alloc: size classes", `Quick, test_alloc_size_classes);
    QCheck_alcotest.to_alcotest alloc_no_overlap;
    ("atomic_reg: test-and-set", `Quick, test_tas);
    ("atomic_reg: compare-and-swap", `Quick, test_cas);
    ("atomic_reg: latency", `Quick, test_reg_latency);
  ]
