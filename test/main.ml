let () =
  Alcotest.run "tm2c"
    [
      ("engine", Test_engine.suite);
      ("noc", Test_noc.suite);
      ("memory", Test_memory.suite);
      ("tm2c", Test_tm2c.suite);
      ("dtm", Test_dtm.suite);
      ("apps", Test_apps.suite);
      ("workload", Test_workload.suite);
      ("integration", Test_integration.suite);
      ("harness", Test_harness.suite);
      ("export", Test_export.suite);
      ("profile", Test_profile.suite);
      ("check", Test_check.suite);
      ("stream", Test_stream.suite);
      ("fault", Test_fault.suite);
      ("failover", Test_failover.suite);
      ("sketch", Test_sketch.suite);
      ("recorder", Test_recorder.suite);
      ("lint", Test_lint.suite);
      ("openloop", Test_openloop.suite);
    ]
