(* Tests for the topology, platform and network models. *)

open Tm2c_engine
open Tm2c_noc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Topology ---- *)

let test_scc_layout () =
  check_int "48 cores" 48 (Topology.n_cores Topology.scc);
  check_int "2 cores per tile" 0 (Topology.core_tile Topology.scc 1);
  check_int "core 2 on tile 1" 1 (Topology.core_tile Topology.scc 2);
  Alcotest.(check (pair int int)) "tile 0 at origin" (0, 0) (Topology.tile_coords Topology.scc 0);
  Alcotest.(check (pair int int)) "tile 7 at (1,1)" (1, 1) (Topology.tile_coords Topology.scc 7)

let test_hops () =
  let t = Topology.scc in
  check_int "same tile" 0 (Topology.hops t 0 1);
  check_int "adjacent tiles" 1 (Topology.hops t 0 2);
  (* Core 0 on tile (0,0); core 47 on tile 23 = (5,3): 5+3 hops. *)
  check_int "diagonal corners" 8 (Topology.hops t 0 47);
  (* Symmetry over all pairs. *)
  for a = 0 to 47 do
    for b = 0 to 47 do
      if Topology.hops t a b <> Topology.hops t b a then
        Alcotest.failf "hops not symmetric for %d %d" a b
    done
  done

let test_flat_topology () =
  let t = Topology.opteron48 in
  check_int "48 cores" 48 (Topology.n_cores t);
  check_int "no hops" 0 (Topology.hops t 0 47);
  check_int "no mc hops" 0 (Topology.hops_to_mc t ~core:13 ~mc:2)

let test_mc_hops () =
  let t = Topology.scc in
  check_int "corner core to corner mc" 0 (Topology.hops_to_mc t ~core:0 ~mc:0);
  check "mc distance bounded by mesh diameter" true
    (Topology.hops_to_mc t ~core:47 ~mc:0 <= 8);
  check_int "four controllers" 4 (Topology.n_memory_controllers t)

let hops_triangle =
  QCheck.Test.make ~name:"mesh hops satisfy triangle inequality" ~count:300
    QCheck.(triple (int_bound 47) (int_bound 47) (int_bound 47))
    (fun (a, b, c) ->
      let t = Topology.scc in
      Topology.hops t a c <= Topology.hops t a b + Topology.hops t b c)

(* ---- Platform ---- *)

let test_settings_table () =
  check_int "five settings" 5 (Array.length Platform.scc_settings);
  Alcotest.(check (triple int int int)) "setting 0" (533, 800, 800) Platform.scc_settings.(0);
  Alcotest.(check (triple int int int)) "setting 1" (800, 1600, 1066) Platform.scc_settings.(1);
  Alcotest.check_raises "setting 5 rejected"
    (Invalid_argument "Platform.scc_setting: setting must be in 0-4") (fun () ->
      ignore (Platform.scc_setting 5))

let rt p active =
  (* Round trip between core 0 and core 47 equals two one-way trips. *)
  Platform.one_way_ns p ~active ~src:0 ~dst:47 +. Platform.one_way_ns p ~active ~src:47 ~dst:0

let test_latency_calibration () =
  (* Fig. 8(a): the SCC round trip is ~5.1 us on 2 cores and ~12.4 us
     on 48 cores; we accept a 25% band. *)
  let rt2 = rt Platform.scc 2 /. 1e3 and rt48 = rt Platform.scc 48 /. 1e3 in
  check "SCC rt@2 in band" true (rt2 > 5.1 *. 0.75 && rt2 < 5.1 *. 1.25);
  check "SCC rt@48 in band" true (rt48 > 12.4 *. 0.75 && rt48 < 12.4 *. 1.25);
  (* SCC800 messaging beats the multi-core's at 48 cores (Section 7.1),
     while the multi-core is fastest at 2 cores. *)
  check "SCC800 fastest at 48" true
    (rt Platform.scc800 48 < rt Platform.opteron 48
    && rt Platform.scc800 48 < rt Platform.scc 48);
  check "Opteron fastest at 2" true
    (rt Platform.opteron 2 < rt Platform.scc800 2)

let test_latency_monotone () =
  List.iter
    (fun p ->
      let prev = ref 0.0 in
      List.iter
        (fun n ->
          let v = rt p n in
          check "rt grows with active cores" true (v > !prev);
          prev := v)
        [ 2; 4; 8; 16; 32; 48 ])
    Platform.all

let test_memory_faster_than_messages () =
  (* Section 6.2: "On the SCC, a memory access is faster than a
     message delivery" — the premise of elastic-read. *)
  List.iter
    (fun p ->
      check "memory read beats one-way message" true
        (Platform.mem_read_ns p ~core:0 ~mc:3 < Platform.one_way_ns p ~active:2 ~src:0 ~dst:1))
    Platform.all

let test_cycles_ns () =
  let p = Platform.scc in
  Alcotest.(check (float 0.01)) "533 cycles ~ 1us" 1000.0 (Platform.cycles_ns p 533)

(* ---- Network ---- *)

let test_network_roundtrip_timing () =
  let sim = Sim.create () in
  let net = Network.create sim Platform.scc ~active:2 in
  let rt_measured = ref 0.0 in
  Sim.spawn sim (fun () ->
      let t0 = Sim.now sim in
      Network.send net ~src:0 ~dst:1 `Ping;
      (match Network.recv net ~self:0 with `Pong -> () | `Ping -> Alcotest.fail "bad msg");
      rt_measured := Sim.now sim -. t0);
  Sim.spawn sim (fun () ->
      match Network.recv net ~self:1 with
      | `Ping -> Network.send net ~src:1 ~dst:0 `Pong
      | `Pong -> Alcotest.fail "bad msg");
  let _ = Sim.run sim () in
  let expected =
    Platform.one_way_ns Platform.scc ~active:2 ~src:0 ~dst:1
    +. Platform.one_way_ns Platform.scc ~active:2 ~src:1 ~dst:0
  in
  Alcotest.(check (float 1.0)) "measured rt = model rt" expected !rt_measured;
  check_int "two messages" 2 (Network.sent net)

let test_network_fifo_per_pair () =
  let sim = Sim.create () in
  let net = Network.create sim Platform.scc ~active:2 in
  let got = ref [] in
  Sim.spawn sim (fun () ->
      for i = 1 to 5 do
        Network.send net ~src:0 ~dst:1 i
      done);
  Sim.spawn sim (fun () ->
      for _ = 1 to 5 do
        got := Network.recv net ~self:1 :: !got
      done);
  let _ = Sim.run sim () in
  Alcotest.(check (list int)) "per-pair FIFO" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_network_try_recv_costs () =
  let sim = Sim.create () in
  let net = Network.create sim Platform.scc ~active:48 in
  Sim.spawn sim (fun () ->
      let t0 = Sim.now sim in
      (match Network.try_recv net ~self:0 with
      | None -> ()
      | Some _ -> Alcotest.fail "unexpected message");
      let scan = Sim.now sim -. t0 in
      check "empty poll charges a full scan" true (scan > 0.0))
  ;
  let _ = Sim.run sim () in
  ()

let suite =
  [
    ("topology: SCC layout", `Quick, test_scc_layout);
    ("topology: XY hops", `Quick, test_hops);
    ("topology: flat", `Quick, test_flat_topology);
    ("topology: memory controllers", `Quick, test_mc_hops);
    QCheck_alcotest.to_alcotest hops_triangle;
    ("platform: settings table", `Quick, test_settings_table);
    ("platform: Fig 8a calibration", `Quick, test_latency_calibration);
    ("platform: latency monotone in cores", `Quick, test_latency_monotone);
    ("platform: memory faster than messages", `Quick, test_memory_faster_than_messages);
    ("platform: cycle conversion", `Quick, test_cycles_ns);
    ("network: round-trip timing", `Quick, test_network_roundtrip_timing);
    ("network: FIFO per pair", `Quick, test_network_fifo_per_pair);
    ("network: poll cost", `Quick, test_network_try_recv_costs);
  ]
