open Tm2c_engine
let () =
  let sim = Sim.create () in
  let iv = Ivar.create () in
  let got = ref [] in
  for i = 1 to 2 do
    Sim.spawn sim (fun () ->
      Printf.printf "reader %d starting at %.0f\n%!" i (Sim.now sim);
      let v = Ivar.read iv in
      Printf.printf "reader %d got %d at %.0f\n%!" i v (Sim.now sim);
      got := v :: !got)
  done;
  Sim.spawn sim (fun () -> Sim.delay 10.0; Printf.printf "filling\n%!"; Ivar.fill iv 5);
  let n = Sim.run sim () in
  Printf.printf "events=%d got=[%s] finished=%d\n" n (String.concat ";" (List.map string_of_int !got)) (Sim.finished sim)
