(* Protocol-level tests of the DS-Lock service: drive Dtm.handle
   directly with hand-built requests on a tiny simulated machine and
   inspect the lock table, the responses, and the victims' status
   words (Algorithms 1 and 2, revocation, batching rollback). *)

open Tm2c_core
open Tm2c_core.Types
open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A machine with one DTM core (0) and three app cores (1, 2, 3); we
   play the app cores by sending requests from the host side and
   reading the responses out of the network. *)
type rig = {
  t : Runtime.t;
  server : Dtm.server;
  env : System.env;
  mutable req_id : int;
}

let make_rig ?(policy = Cm.Fair_cm) () =
  let cfg =
    {
      Runtime.default_config with
      total_cores = 4;
      service_cores = 1;
      policy;
      mem_words = 1 lsl 16;
    }
  in
  let t = Runtime.create cfg in
  let env = Runtime.env t in
  { t; server = Dtm.make ~core:0; env; req_id = 100 }

let meta rig ~core ?(attempt = 0) ?(committed = 0) ?(effective = 0.0) () =
  ignore rig;
  {
    m_core = core;
    m_attempt = attempt;
    m_offset_ns = 0.0;
    m_committed = committed;
    m_effective_ns = effective;
  }

(* Put the core's status word in the state the DTM expects. *)
let set_status rig ~core ~attempt state =
  Tm2c_memory.Atomic_reg.poke rig.env.System.regs ~reg:core
    (Status.encode ~attempt state)

let status_of rig ~core =
  Status.decode (Tm2c_memory.Atomic_reg.peek rig.env.System.regs ~reg:core)

(* Run [Dtm.handle] inside the simulation and return the response the
   server sent back to the requester (None for releases). *)
let submit rig ~core kind ~m =
  rig.req_id <- rig.req_id + 1;
  let req = { System.tx = m; kind; req_id = rig.req_id; epoch = 0 } in
  let result = ref None in
  Sim.spawn (Runtime.sim rig.t) (fun () ->
      Dtm.handle rig.env rig.server req;
      (* Let the response cross the interconnect. *)
      Sim.delay 1e6;
      match Tm2c_noc.Network.try_recv rig.env.System.net ~self:core with
      | Some (System.Resp r) ->
          assert (r.req_id = rig.req_id);
          result := Some r.resp
      | Some (System.Req _) | Some (System.Repl _) | None -> ());
  (* A horizon relative to the current clock: [run ~until] now clamps
     the clock to the horizon even when the queue drains early, so an
     absolute horizon would leave later submits no headroom. *)
  let _ = Runtime.run rig.t ~until:(Sim.now (Runtime.sim rig.t) +. 1e9) () in
  !result

let test_read_grant_and_release () =
  let rig = make_rig () in
  let m1 = meta rig ~core:1 () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  check "read granted" true (submit rig ~core:1 (System.Read_lock 7) ~m:m1 = Some System.Granted);
  check_int "one locked address" 1 (Locktable.n_locked (Dtm.locks rig.server));
  (* Stale release (wrong attempt) ignored; matching release applies. *)
  ignore (submit rig ~core:1 (System.Release_reads [ 7 ]) ~m:(meta rig ~core:1 ~attempt:5 ()));
  check_int "stale release ignored" 1 (Locktable.n_locked (Dtm.locks rig.server));
  ignore (submit rig ~core:1 (System.Release_reads [ 7 ]) ~m:m1);
  check_int "released" 0 (Locktable.n_locked (Dtm.locks rig.server))

let test_multiple_readers_share () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  check "reader 1" true
    (submit rig ~core:1 (System.Read_lock 7) ~m:(meta rig ~core:1 ()) = Some System.Granted);
  check "reader 2 shares" true
    (submit rig ~core:2 (System.Read_lock 7) ~m:(meta rig ~core:2 ()) = Some System.Granted);
  let entry = Locktable.entry (Dtm.locks rig.server) 7 in
  check_int "two readers" 2 (List.length entry.Locktable.readers)

(* RAW: a reader finding a higher-priority writer loses. *)
let test_raw_requester_loses () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  (* Core 1 writes first (and has higher priority by core-id tie
     break under FairCM at equal effective time). *)
  check "writer granted" true
    (submit rig ~core:1 (System.Write_locks [ 9 ]) ~m:(meta rig ~core:1 ())
    = Some System.Granted);
  check "lower-priority reader gets RAW" true
    (submit rig ~core:2 (System.Read_lock 9) ~m:(meta rig ~core:2 ())
    = Some (System.Conflicted Raw))

(* RAW where the reader has higher priority: the writer is aborted
   remotely via its status word and its lock revoked. *)
let test_raw_enemy_aborted () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  check "low-priority writer granted" true
    (submit rig ~core:2 (System.Write_locks [ 9 ])
       ~m:(meta rig ~core:2 ~effective:5000.0 ())
    = Some System.Granted);
  check "high-priority reader granted" true
    (submit rig ~core:1 (System.Read_lock 9) ~m:(meta rig ~core:1 ())
    = Some System.Granted);
  check "writer status CAS'd to Aborted" true
    (status_of rig ~core:2 = (0, Status.Aborted));
  let entry = Locktable.entry (Dtm.locks rig.server) 9 in
  check "writer revoked" true (entry.Locktable.writer = None)

(* WAW between two writers. *)
let test_waw () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  check "first writer" true
    (submit rig ~core:1 (System.Write_locks [ 3 ]) ~m:(meta rig ~core:1 ())
    = Some System.Granted);
  check "second writer loses WAW" true
    (submit rig ~core:2 (System.Write_locks [ 3 ]) ~m:(meta rig ~core:2 ())
    = Some (System.Conflicted Waw))

(* WAR: the writer must beat every reader; winning aborts them all. *)
let test_war_aborts_all_readers () =
  let rig = make_rig () in
  List.iter (fun c -> set_status rig ~core:c ~attempt:0 Status.Pending) [ 1; 2; 3 ];
  check "reader 2" true
    (submit rig ~core:2 (System.Read_lock 5)
       ~m:(meta rig ~core:2 ~effective:9000.0 ())
    = Some System.Granted);
  check "reader 3" true
    (submit rig ~core:3 (System.Read_lock 5)
       ~m:(meta rig ~core:3 ~effective:9000.0 ())
    = Some System.Granted);
  check "writer wins WAR" true
    (submit rig ~core:1 (System.Write_locks [ 5 ]) ~m:(meta rig ~core:1 ())
    = Some System.Granted);
  check "reader 2 aborted" true (status_of rig ~core:2 = (0, Status.Aborted));
  check "reader 3 aborted" true (status_of rig ~core:3 = (0, Status.Aborted));
  let entry = Locktable.entry (Dtm.locks rig.server) 5 in
  check_int "no readers left" 0 (List.length entry.Locktable.readers);
  check "writer installed" true (entry.Locktable.writer <> None)

(* A committing enemy cannot be aborted: the requester loses even with
   higher priority. *)
let test_committing_enemy_wins () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  check "writer granted" true
    (submit rig ~core:2 (System.Write_locks [ 4 ])
       ~m:(meta rig ~core:2 ~effective:9000.0 ())
    = Some System.Granted);
  (* Enemy reaches its commit point. *)
  set_status rig ~core:2 ~attempt:0 Status.Committing;
  check "even a high-priority reader loses" true
    (submit rig ~core:1 (System.Read_lock 4) ~m:(meta rig ~core:1 ())
    = Some (System.Conflicted Raw));
  check "enemy still committing" true (status_of rig ~core:2 = (0, Status.Committing))

(* A stale enemy (already on a newer attempt) is revoked silently. *)
let test_stale_enemy_revoked () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  check "writer granted" true
    (submit rig ~core:2 (System.Write_locks [ 6 ])
       ~m:(meta rig ~core:2 ~effective:9000.0 ())
    = Some System.Granted);
  (* The writer aborted itself and moved on; its release is "still in
     flight". *)
  set_status rig ~core:2 ~attempt:3 Status.Pending;
  check "requester granted over stale entry" true
    (submit rig ~core:1 (System.Read_lock 6) ~m:(meta rig ~core:1 ())
    = Some System.Granted);
  check "stale enemy NOT aborted" true (status_of rig ~core:2 = (3, Status.Pending))

(* Batch rollback: a conflict in the middle of a write batch must
   release the locks granted earlier in the same batch. *)
let test_batch_rollback () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  check "enemy takes the middle address" true
    (submit rig ~core:1 (System.Write_locks [ 11 ]) ~m:(meta rig ~core:1 ())
    = Some System.Granted);
  (* Core 2 (lower priority) asks for 10, 11, 12 in one batch. *)
  check "batch conflicts on 11" true
    (submit rig ~core:2 (System.Write_locks [ 10; 11; 12 ]) ~m:(meta rig ~core:2 ())
    = Some (System.Conflicted Waw));
  check "10 rolled back" true (Locktable.find (Dtm.locks rig.server) 10 = None);
  check "12 never granted" true (Locktable.find (Dtm.locks rig.server) 12 = None);
  let e11 = Locktable.entry (Dtm.locks rig.server) 11 in
  check "11 still owned by core 1" true
    (match e11.Locktable.writer with Some w -> w.h_core = 1 | None -> false)

(* Re-acquisition by the same transaction is never a self-conflict. *)
let test_no_self_conflict () =
  let rig = make_rig () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  let m = meta rig ~core:1 () in
  check "read" true (submit rig ~core:1 (System.Read_lock 8) ~m = Some System.Granted);
  check "then write same address" true
    (submit rig ~core:1 (System.Write_locks [ 8 ]) ~m = Some System.Granted);
  check "read again as writer" true
    (submit rig ~core:1 (System.Read_lock 8) ~m = Some System.Granted)

(* No-CM: the detecting transaction always aborts, nobody is revoked. *)
let test_nocm_always_requester () =
  let rig = make_rig ~policy:Cm.No_cm () in
  set_status rig ~core:1 ~attempt:0 Status.Pending;
  set_status rig ~core:2 ~attempt:0 Status.Pending;
  check "writer granted" true
    (submit rig ~core:2 (System.Write_locks [ 2 ]) ~m:(meta rig ~core:2 ())
    = Some System.Granted);
  check "reader aborts itself" true
    (submit rig ~core:1 (System.Read_lock 2) ~m:(meta rig ~core:1 ())
    = Some (System.Conflicted Raw));
  check "writer untouched" true (status_of rig ~core:2 = (0, Status.Pending))

let suite =
  [
    ("dtm: read grant and attempt-checked release", `Quick, test_read_grant_and_release);
    ("dtm: readers share", `Quick, test_multiple_readers_share);
    ("dtm: RAW requester loses", `Quick, test_raw_requester_loses);
    ("dtm: RAW enemy aborted via status CAS", `Quick, test_raw_enemy_aborted);
    ("dtm: WAW", `Quick, test_waw);
    ("dtm: WAR aborts all readers", `Quick, test_war_aborts_all_readers);
    ("dtm: committing enemy is safe", `Quick, test_committing_enemy_wins);
    ("dtm: stale enemy revoked silently", `Quick, test_stale_enemy_revoked);
    ("dtm: batch rollback on conflict", `Quick, test_batch_rollback);
    ("dtm: no self-conflict", `Quick, test_no_self_conflict);
    ("dtm: no-CM aborts the detector", `Quick, test_nocm_always_requester);
  ]
