(* Regression smoke tests of the experiment harness: every experiment
   must run end-to-end at a micro scale and print a table. Guards the
   figure-reproduction path itself against bitrot. *)

open Tm2c_harness

let micro_scale =
  {
    Exp.label = "micro";
    window_ns = 1.5e6;
    long_window_ns = 3e6;
    ht_buckets = 16;
    list_elems = 64;
    bank_accounts = 32;
    bank_accounts_5d = 64;
    mr_sizes_kb = [ 64 ];
  }

(* Capture stdout while running an experiment and sanity-check it. *)
let run_capturing id =
  let exp =
    match Harness.find id with
    | Some e -> e
    | None -> Alcotest.failf "experiment %s not registered" id
  in
  let tmp = Filename.temp_file "tm2c-harness" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  (match exp.Harness.run micro_scale with
  | () -> restore ()
  | exception e ->
      restore ();
      raise e);
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  out

let test_experiment id () =
  let out = run_capturing id in
  Alcotest.(check bool)
    (id ^ " produced output") true
    (String.length out > 40);
  (* Every experiment prints at least one table with a header row. *)
  Alcotest.(check bool)
    (id ^ " printed numbers") true
    (String.exists (fun c -> c >= '0' && c <= '9') out)

let test_registry () =
  let ids = List.map (fun e -> e.Harness.id) Harness.all in
  Alcotest.(check int) "18 experiments registered" 18 (List.length ids);
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " present") true (List.mem required ids))
    [
      "settings"; "fig4a"; "fig4b"; "fig4c"; "fig5a"; "fig5b"; "fig5c"; "fig5d";
      "fig6a"; "fig6b"; "fig7a"; "fig7b"; "fig8a"; "fig8b"; "fig8c"; "fig8d";
      "ablations"; "fig_overload";
    ]

let test_unknown_rejected () =
  Alcotest.check_raises "unknown id rejected"
    (Invalid_argument "unknown experiment \"nope\"") (fun () ->
      ignore (Harness.run_ids [ "nope" ] micro_scale))

(* The cheap experiments run as part of the default suite; the rest
   are marked slow (alcotest still runs them by default, but they can
   be excluded with `-q`). *)
let suite =
  [
    ("registry complete", `Quick, test_registry);
    ("unknown experiment rejected", `Quick, test_unknown_rejected);
    ("settings", `Quick, test_experiment "settings");
    ("fig8a", `Quick, test_experiment "fig8a");
    ("fig4a", `Slow, test_experiment "fig4a");
    ("fig4c", `Slow, test_experiment "fig4c");
    ("fig5a", `Slow, test_experiment "fig5a");
    ("fig5c", `Slow, test_experiment "fig5c");
    ("fig6a", `Slow, test_experiment "fig6a");
    ("fig7a", `Slow, test_experiment "fig7a");
    ("fig8c", `Slow, test_experiment "fig8c");
    ("ablations", `Slow, test_experiment "ablations");
  ]
