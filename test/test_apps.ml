(* Tests for the benchmark applications in their sequential (bare)
   forms, host-side helpers, and property-based model checks. *)

open Tm2c_core
open Tm2c_apps
open Tm2c_engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_runtime ?(seed = 42) () =
  Runtime.create
    {
      Runtime.platform = Tm2c_noc.Platform.scc;
      total_cores = 4;
      service_cores = 2;
      deployment = Runtime.Dedicated;
      policy = Cm.Fair_cm;
      wmode = Tx.Lazy;
      batching = true;
      max_skew_ns = 3_000.0;
      seed;
      mem_words = 1 lsl 18;
    }

(* Run a sequential (direct-access) workload on one simulated core. *)
let on_core t f =
  let core = (Runtime.app_cores t).(0) in
  Tm2c_engine.Sim.spawn (Runtime.sim t) (fun () -> f core);
  let _ = Runtime.run t ~until:1e12 () in
  ()

(* ---- Hash table ---- *)

let test_ht_populate () =
  let t = make_runtime () in
  let ht = Hashtable.create t ~n_buckets:16 in
  Hashtable.populate ht (Runtime.fork_prng t) ~n:64 ~key_range:512;
  check_int "populated size" 64 (Hashtable.size ht);
  Hashtable.check_invariants ht;
  check_int "to_list agrees" 64 (List.length (Hashtable.to_list ht))

let test_ht_seq_ops () =
  let t = make_runtime () in
  let ht = Hashtable.create t ~n_buckets:8 in
  let env = Runtime.env t in
  on_core t (fun core ->
      check "add new" true (Hashtable.seq_add env ~core ht 5);
      check "add duplicate" false (Hashtable.seq_add env ~core ht 5);
      check "contains" true (Hashtable.seq_contains env ~core ht 5);
      check "not contains" false (Hashtable.seq_contains env ~core ht 6);
      check "remove" true (Hashtable.seq_remove env ~core ht 5);
      check "remove absent" false (Hashtable.seq_remove env ~core ht 5));
  check_int "empty at end" 0 (Hashtable.size ht)

let ht_seq_model =
  QCheck.Test.make ~name:"hash table agrees with a set model (sequential)" ~count:30
    QCheck.(list_of_size (Gen.int_range 0 80) (pair (int_bound 2) (int_bound 50)))
    (fun ops ->
      let t = make_runtime () in
      let ht = Hashtable.create t ~n_buckets:4 in
      let env = Runtime.env t in
      let model = Hashtbl.create 32 in
      let ok = ref true in
      on_core t (fun core ->
          List.iter
            (fun (op, k) ->
              match op with
              | 0 ->
                  let expect = not (Hashtbl.mem model k) in
                  if expect then Hashtbl.replace model k ();
                  if Hashtable.seq_add env ~core ht k <> expect then ok := false
              | 1 ->
                  let expect = Hashtbl.mem model k in
                  Hashtbl.remove model k;
                  if Hashtable.seq_remove env ~core ht k <> expect then ok := false
              | _ ->
                  if Hashtable.seq_contains env ~core ht k <> Hashtbl.mem model k
                  then ok := false)
            ops);
      Hashtable.check_invariants ht;
      !ok && Hashtable.size ht = Hashtbl.length model)

(* ---- Linked list ---- *)

let test_list_seq_ops () =
  let t = make_runtime () in
  let l = Linkedlist.create t in
  let env = Runtime.env t in
  on_core t (fun core ->
      check "add 3" true (Linkedlist.seq_add env ~core l 3);
      check "add 1" true (Linkedlist.seq_add env ~core l 1);
      check "add 2" true (Linkedlist.seq_add env ~core l 2);
      check "add 2 again" false (Linkedlist.seq_add env ~core l 2);
      check "contains 2" true (Linkedlist.seq_contains env ~core l 2);
      check "remove 2" true (Linkedlist.seq_remove env ~core l 2));
  Alcotest.(check (list int)) "sorted contents" [ 1; 3 ] (Linkedlist.to_list l);
  Linkedlist.check_invariants l

let test_list_populate () =
  let t = make_runtime () in
  let l = Linkedlist.create t in
  Linkedlist.populate l (Runtime.fork_prng t) ~n:50 ~key_range:500;
  check_int "size" 50 (Linkedlist.size l);
  Linkedlist.check_invariants l

let list_seq_model =
  QCheck.Test.make ~name:"linked list agrees with a set model (sequential)" ~count:30
    QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_bound 2) (int_bound 30)))
    (fun ops ->
      let t = make_runtime () in
      let l = Linkedlist.create t in
      let env = Runtime.env t in
      let model = Hashtbl.create 32 in
      let ok = ref true in
      on_core t (fun core ->
          List.iter
            (fun (op, k) ->
              match op with
              | 0 ->
                  let expect = not (Hashtbl.mem model k) in
                  if expect then Hashtbl.replace model k ();
                  if Linkedlist.seq_add env ~core l k <> expect then ok := false
              | 1 ->
                  let expect = Hashtbl.mem model k in
                  Hashtbl.remove model k;
                  if Linkedlist.seq_remove env ~core l k <> expect then ok := false
              | _ ->
                  if Linkedlist.seq_contains env ~core l k <> Hashtbl.mem model k
                  then ok := false)
            ops);
      Linkedlist.check_invariants l;
      !ok
      && List.sort compare (Linkedlist.to_list l)
         = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []))

(* ---- Bank ---- *)

let test_bank_seq () =
  let t = make_runtime () in
  let bank = Bank.create t ~accounts:8 ~initial:100 in
  let env = Runtime.env t in
  on_core t (fun core ->
      Bank.seq_transfer env ~core bank ~src:0 ~dst:1 ~amount:30;
      check_int "balance sums" 800 (Bank.seq_balance env ~core bank));
  check_int "total conserved" 800 (Bank.total bank)

let test_bank_lock () =
  let t = make_runtime () in
  let bank = Bank.create t ~accounts:8 ~initial:50 in
  let env = Runtime.env t in
  let prng = Runtime.fork_prng t in
  on_core t (fun core ->
      for _ = 1 to 20 do
        Bank.lock_transfer env ~core ~prng bank ~src:(Prng.int prng 8)
          ~dst:(Prng.int prng 8) ~amount:1
      done;
      check_int "lock balance" 400 (Bank.lock_balance env ~core ~prng bank));
  check_int "lock total conserved" 400 (Bank.total bank)

let test_bank_lock_mutual_exclusion () =
  (* Many cores through the global lock: still conserved, and lost
     updates impossible. *)
  let t =
    Runtime.create
      {
        (Runtime.config (make_runtime ())) with
        total_cores = 8;
        deployment = Runtime.Multitask;
        service_cores = 8;
      }
  in
  let bank = Bank.create t ~accounts:4 ~initial:1000 in
  let env = Runtime.env t in
  Array.iter
    (fun core ->
      let prng = Runtime.fork_prng t in
      Runtime.spawn_app t core (fun () ->
          for _ = 1 to 50 do
            Bank.lock_transfer env ~core ~prng bank ~src:(Prng.int prng 4)
              ~dst:(Prng.int prng 4) ~amount:1
          done))
    (Runtime.app_cores t);
  let _ = Runtime.run t ~until:1e12 () in
  check_int "conserved under concurrency" 4000 (Bank.total bank)

let bank_transfers_conserve =
  QCheck.Test.make ~name:"random sequential transfers conserve the total" ~count:30
    QCheck.(list_of_size (Gen.int_range 0 40) (tup3 (int_bound 7) (int_bound 7) (int_bound 20)))
    (fun transfers ->
      let t = make_runtime () in
      let bank = Bank.create t ~accounts:8 ~initial:100 in
      let env = Runtime.env t in
      on_core t (fun core ->
          List.iter
            (fun (src, dst, amount) -> Bank.seq_transfer env ~core bank ~src ~dst ~amount)
            transfers);
      Bank.total bank = 800)

(* ---- MapReduce ---- *)

let test_mapreduce_seq () =
  let t = make_runtime () in
  let mr = Mapreduce.create t ~seed:11 ~input_bytes:(32 * 1024) ~chunk_bytes:4096 in
  check_int "chunk count" 8 (Mapreduce.n_chunks mr);
  let env = Runtime.env t in
  on_core t (fun core -> Mapreduce.sequential env ~core mr);
  check "sequential histogram exact" true
    (Mapreduce.histogram mr = Mapreduce.expected_histogram mr);
  check_int "histogram sums to input size" (32 * 1024)
    (Array.fold_left ( + ) 0 (Mapreduce.histogram mr))

let test_mapreduce_ragged_tail () =
  let t = make_runtime () in
  (* Input not a multiple of the chunk size: the last chunk is short. *)
  let mr = Mapreduce.create t ~seed:5 ~input_bytes:10_000 ~chunk_bytes:4096 in
  check_int "ceil division" 3 (Mapreduce.n_chunks mr);
  let env = Runtime.env t in
  on_core t (fun core -> Mapreduce.sequential env ~core mr);
  check_int "all bytes counted" 10_000 (Array.fold_left ( + ) 0 (Mapreduce.histogram mr))

let suite =
  [
    ("hashtable: populate", `Quick, test_ht_populate);
    ("hashtable: sequential ops", `Quick, test_ht_seq_ops);
    QCheck_alcotest.to_alcotest ht_seq_model;
    ("linkedlist: sequential ops", `Quick, test_list_seq_ops);
    ("linkedlist: populate", `Quick, test_list_populate);
    QCheck_alcotest.to_alcotest list_seq_model;
    ("bank: sequential", `Quick, test_bank_seq);
    ("bank: global lock", `Quick, test_bank_lock);
    ("bank: lock mutual exclusion", `Quick, test_bank_lock_mutual_exclusion);
    QCheck_alcotest.to_alcotest bank_transfers_conserve;
    ("mapreduce: sequential histogram", `Quick, test_mapreduce_seq);
    ("mapreduce: ragged tail chunk", `Quick, test_mapreduce_ragged_tail);
  ]
